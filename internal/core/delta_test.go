package core

import (
	"fmt"
	"reflect"
	"testing"

	"poiesis/internal/fcp"
	"poiesis/internal/measures"
	"poiesis/internal/policy"
	"poiesis/internal/sim"
	"poiesis/internal/workloads"
)

// deltaMatrixSim keeps each cell of the equivalence matrix cheap: the matrix
// multiplies workloads × patterns × depths × pipelines.
func deltaMatrixSim() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.DefaultRows = 80
	cfg.Runs = 8
	return cfg
}

// resultSignature reduces a Result to everything the equivalence contract
// covers: stats, per-alternative labels and full measure reports, and the
// skyline. Graph pointers are excluded (distinct objects by construction).
type resultSignature struct {
	Stats      Stats
	Initial    *measures.Report
	Labels     []string
	Reports    []*measures.Report
	SkylineIdx []int
	Dims       []measures.Characteristic
}

func signatureOf(res *Result) resultSignature {
	sig := resultSignature{
		Stats:      res.Stats,
		Initial:    res.Initial.Report,
		SkylineIdx: res.SkylineIdx,
		Dims:       res.Dims,
	}
	for i := range res.Alternatives {
		a := &res.Alternatives[i]
		sig.Labels = append(sig.Labels, a.Label())
		sig.Reports = append(sig.Reports, a.Report)
	}
	return sig
}

// TestDeltaEquivalenceMatrix is the acceptance oracle for delta evaluation:
// over every builtin workload × every registry pattern × depths 1–2, planning
// with DeltaEval on and off must produce identical Results — same stats, same
// alternatives with byte-identical measure reports, same skyline.
func TestDeltaEquivalenceMatrix(t *testing.T) {
	patterns := fcp.DefaultRegistry().Names()
	for _, wl := range workloads.Names() {
		for _, pat := range patterns {
			for depth := 1; depth <= 2; depth++ {
				wl, pat, depth := wl, pat, depth
				t.Run(fmt.Sprintf("%s/%s/depth=%d", wl, pat, depth), func(t *testing.T) {
					t.Parallel()
					flow, ok := workloads.Get(wl)
					if !ok {
						t.Fatalf("unknown workload %s", wl)
					}
					bind := sim.AutoBinding(flow, 80, 1)
					run := func(mode DeltaMode) *Result {
						planner := NewPlanner(nil, Options{
							Palette:         []string{pat},
							Policy:          policy.Exhaustive{},
							Depth:           depth,
							MaxAlternatives: 48,
							Sim:             deltaMatrixSim(),
							Streaming:       StreamingOff,
							DeltaEval:       mode,
						})
						res, err := planner.Plan(flow, bind)
						if err != nil {
							t.Fatal(err)
						}
						return res
					}
					on, off := run(DeltaOn), run(DeltaOff)
					if !reflect.DeepEqual(signatureOf(on), signatureOf(off)) {
						t.Errorf("DeltaOn and DeltaOff disagree:\non:  %+v\noff: %+v",
							signatureOf(on), signatureOf(off))
					}
				})
			}
		}
	}
}

// TestDeltaEquivalenceStreaming closes the 2x2: the streaming pipeline with
// delta evaluation (the production default) equals the sequential full
// evaluation (the double oracle) on a multi-pattern space.
func TestDeltaEquivalenceStreaming(t *testing.T) {
	flow, _ := workloads.Get("tpcds-purchases")
	bind := sim.AutoBinding(flow, 120, 1)
	run := func(s StreamingMode, d DeltaMode) *Result {
		planner := NewPlanner(nil, Options{
			Policy:    policy.Exhaustive{},
			Depth:     2,
			Sim:       deltaMatrixSim(),
			Streaming: s,
			DeltaEval: d,
		})
		res, err := planner.Plan(flow, bind)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := signatureOf(run(StreamingOff, DeltaOff))
	for _, c := range []struct {
		name string
		s    StreamingMode
		d    DeltaMode
	}{
		{"stream+delta", StreamingOn, DeltaOn},
		{"stream+full", StreamingOn, DeltaOff},
		{"sequential+delta", StreamingOff, DeltaOn},
	} {
		if got := signatureOf(run(c.s, c.d)); !reflect.DeepEqual(got, want) {
			t.Errorf("%s differs from sequential full evaluation", c.name)
		}
	}
}

// TestDeltaSharedCacheRace drives the default streaming pipeline — whose
// evaluation workers share one sim.EvalCache — with more workers than cores
// repeatedly; the CI -race run of this package is the actual assertion.
func TestDeltaSharedCacheRace(t *testing.T) {
	flow, _ := workloads.Get("tpch-revenue")
	bind := sim.AutoBinding(flow, 60, 1)
	for rep := 0; rep < 3; rep++ {
		planner := NewPlanner(nil, Options{
			Policy:    policy.Exhaustive{},
			Depth:     2,
			Workers:   16,
			Sim:       deltaMatrixSim(),
			DeltaEval: DeltaOn,
		})
		if _, err := planner.Plan(flow, bind); err != nil {
			t.Fatal(err)
		}
	}
}
