package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"poiesis/internal/etl"
	"poiesis/internal/measures"
	"poiesis/internal/policy"
	"poiesis/internal/sim"
)

// PlanKey returns a canonical cache key identifying a planning request: the
// flow's canonical fingerprint combined with a canonicalization of the
// effective options and the source binding. Planning is deterministic in
// these inputs, so two requests with equal keys produce identical Results —
// the property a fingerprint-keyed plan cache relies on to serve one
// session's result to another.
//
// Components that do not influence the result are excluded from the key:
// Workers, Progress, Streaming (the streaming and sequential pipelines
// produce identical alternative sets, stats and skylines), DeltaEval (delta
// evaluation is enforced byte-identical to full evaluation, so both modes may
// share cached results) and Columnar (the columnar engine is enforced
// byte-identical to the row oracle).
//
// ok is false when the options contain components the canonicalization
// cannot see through — custom measures, or a Policy implementation other
// than the built-in ones — in which case the request must not be served from
// (or stored in) a cache. Constraints are canonicalized by Name(); the
// built-in constraint constructors encode their bounds in the name, but
// hand-built policy.NewConstraint values must use distinct names for
// distinct predicates to be cache-safe.
func PlanKey(g *etl.Graph, bind sim.Binding, opts Options) (string, bool) {
	if g == nil {
		return "", false
	}
	o := opts.withDefaults()
	if len(o.CustomMeasures) > 0 {
		return "", false
	}
	pol, ok := canonicalPolicy(o.Policy)
	if !ok {
		return "", false
	}

	var b strings.Builder
	fmt.Fprintf(&b, "flow:%s\n", g.Fingerprint())
	fmt.Fprintf(&b, "palette:%q\n", o.Palette)
	fmt.Fprintf(&b, "policy:%s\n", pol)
	// StaticPrune is keyed even though Alternatives and the skyline are
	// mode-independent: Stats (StaticPruned vs Evaluated/ConstraintRejected
	// splits) are part of the cached Result.
	fmt.Fprintf(&b, "depth:%d max:%d dedup:%t prune:%d\n", o.Depth, o.MaxAlternatives, !o.DisableDedup, o.StaticPrune)
	dims := make([]string, len(o.Dims))
	for i, d := range o.Dims {
		dims[i] = string(d)
	}
	fmt.Fprintf(&b, "dims:%q\n", dims)
	names := make([]string, len(o.Constraints))
	for i, c := range o.Constraints {
		names[i] = c.Name()
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "constraints:%q\n", names)
	fmt.Fprintf(&b, "sim:%+v\n", o.Sim)

	ids := make([]string, 0, len(bind))
	for id := range bind {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "bind:%s=%+v\n", id, bind[etl.NodeID(id)])
	}

	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16]), true
}

// canonicalPolicy renders the built-in deployment policies to a stable
// string. Unknown Policy implementations are not canonicalizable.
func canonicalPolicy(p policy.Policy) (string, bool) {
	switch q := p.(type) {
	case policy.Exhaustive:
		return fmt.Sprintf("exhaustive{max:%d}", q.MaxPerPattern), true
	case policy.Greedy:
		return fmt.Sprintf("greedy{topk:%d}", q.TopK), true
	case policy.GoalDriven:
		var w strings.Builder
		for _, c := range measures.AllCharacteristics() {
			fmt.Fprintf(&w, "%s=%g;", c, q.Goals.Weight(c))
		}
		return fmt.Sprintf("goal_driven{topk:%d goals:%s}", q.TopK, w.String()), true
	case policy.RandomSample:
		return fmt.Sprintf("random_sample{n:%d seed:%d}", q.N, q.Seed), true
	default:
		return "", false
	}
}
