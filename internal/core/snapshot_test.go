package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// snapshotJSON renders a snapshot to canonical JSON for byte comparisons.
func snapshotJSON(t *testing.T, snap *SessionSnapshot) []byte {
	t.Helper()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshalling snapshot: %v", err)
	}
	return b
}

// TestSnapshotRoundTripFresh covers a session that has not explored yet.
func TestSnapshotRoundTripFresh(t *testing.T) {
	s := newTestSession(t)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != SnapshotFormatVersion {
		t.Errorf("version %d, want %d", snap.Version, SnapshotFormatVersion)
	}
	if snap.Last != nil || len(snap.History) != 0 {
		t.Errorf("fresh session snapshot carries result/history: %+v", snap)
	}
	if len(snap.Binding) == 0 {
		t.Error("snapshot lost the source binding")
	}

	restored, err := RestoreSession(s.Planner(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Current().Fingerprint(), s.Current().Fingerprint(); got != want {
		t.Errorf("restored flow fingerprint %s, want %s", got, want)
	}
	if !reflect.DeepEqual(restored.Binding(), s.Binding()) {
		t.Errorf("binding did not round-trip:\n got %+v\nwant %+v", restored.Binding(), s.Binding())
	}
}

// TestSnapshotRoundTripFull drives a real explore→select→explore loop and
// asserts the snapshot is a fixed point: snapshotting the restored session
// reproduces the original snapshot byte for byte — flow, binding, history and
// the complete last result (alternatives, reports, skyline, stats).
func TestSnapshotRoundTripFull(t *testing.T) {
	s := newTestSession(t)
	if _, err := s.Explore(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select(0); err != nil {
		t.Fatal(err)
	}
	res, err := s.Explore()
	if err != nil {
		t.Fatal(err)
	}

	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.History) != 1 {
		t.Fatalf("history length %d, want 1", len(snap.History))
	}
	if snap.Last == nil || len(snap.Last.Alternatives) != len(res.Alternatives) {
		t.Fatalf("last result not fully captured: %+v", snap.Last)
	}

	restored, err := RestoreSession(s.Planner(), snap)
	if err != nil {
		t.Fatal(err)
	}
	again, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := snapshotJSON(t, snap), snapshotJSON(t, again); !bytes.Equal(a, b) {
		t.Errorf("snapshot is not a fixed point:\n first %s\nsecond %s", a, b)
	}

	// The restored result supports the same interactions: selecting a skyline
	// member by index works and advances the history.
	got := restored.LastResult()
	if got == nil || len(got.SkylineIdx) != len(res.SkylineIdx) {
		t.Fatalf("restored last result skyline %v, want %v", got, res.SkylineIdx)
	}
	if !reflect.DeepEqual(restored.History(), s.History()) {
		t.Errorf("history did not round-trip: %+v vs %+v", restored.History(), s.History())
	}
	alt, err := restored.Select(0)
	if err != nil {
		t.Fatalf("select on restored session: %v", err)
	}
	want := res.Alternatives[res.SkylineIdx[0]].Graph.Fingerprint()
	if alt.Graph.Fingerprint() != want {
		t.Errorf("restored select integrated %s, want %s", alt.Graph.Fingerprint(), want)
	}
	if alt.Label() != res.Alternatives[res.SkylineIdx[0]].Label() {
		t.Errorf("application labels did not round-trip: %q", alt.Label())
	}
}

// TestSnapshotDuringExploration verifies Snapshot is safe and coherent while
// a run is in flight (it sees the pre-run state).
func TestSnapshotDuringExploration(t *testing.T) {
	s := newTestSession(t)
	done := make(chan error, 1)
	go func() {
		_, err := s.Explore()
		done <- err
	}()
	if _, err := s.Snapshot(); err != nil {
		t.Errorf("snapshot during exploration: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	s := newTestSession(t)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := RestoreSession(nil, nil); err == nil {
		t.Error("nil snapshot accepted")
	}

	future := *snap
	future.Version = SnapshotFormatVersion + 1
	if _, err := RestoreSession(nil, &future); err == nil {
		t.Error("future format version accepted")
	}

	noFlow := *snap
	noFlow.Flow = nil
	if _, err := RestoreSession(nil, &noFlow); err == nil {
		t.Error("missing flow accepted")
	}

	badFlow := *snap
	badFlow.Flow = json.RawMessage(`{"name":"x","nodes":[{"id":"a","kind":"nonsense"}]}`)
	if _, err := RestoreSession(nil, &badFlow); err == nil {
		t.Error("undecodable flow accepted")
	}
}

func TestRestoreRejectsCorruptResult(t *testing.T) {
	s := newTestSession(t)
	if _, err := s.Explore(); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Last.SkylineIdx = append(snap.Last.SkylineIdx, len(snap.Last.Alternatives)+7)
	if _, err := RestoreSession(nil, snap); err == nil {
		t.Error("out-of-range skyline index accepted")
	}
}
