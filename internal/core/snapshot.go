package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"poiesis/internal/data"
	"poiesis/internal/etl"
	"poiesis/internal/fcp"
	"poiesis/internal/measures"
	"poiesis/internal/sim"
)

// SnapshotFormatVersion is the current serialization format of
// SessionSnapshot. RestoreSession rejects snapshots written by a newer
// format; bumping this constant (with a migration path for older records) is
// how future format changes stay loadable.
const SnapshotFormatVersion = 1

// SessionSnapshot is the crash-safe serialized form of a Session: everything
// an analyst's explore-select loop has accumulated — the current flow design
// (the etl JSON wire format), the source binding, the accepted selection
// history and the last planning result — as one versioned JSON document. A
// service persists snapshots so sessions survive restarts, and because the
// record is self-contained it can be shipped to another replica and restored
// there (the enabling property for routing sessions by ID).
//
// The planner is deliberately absent: planner options contain interfaces and
// callbacks that do not serialize. Callers persist their own options spec
// (e.g. a config document) next to the snapshot and rebuild the planner when
// restoring.
type SessionSnapshot struct {
	Version int                 `json:"version"`
	Flow    json.RawMessage     `json:"flow"`
	Binding []SourceSnapshot    `json:"binding,omitempty"`
	History []SelectionSnapshot `json:"history,omitempty"`
	Last    *ResultSnapshot     `json:"last,omitempty"`
}

// SourceSnapshot serializes one synthetic source binding (node → SourceSpec).
type SourceSnapshot struct {
	Node           string          `json:"node"`
	Name           string          `json:"name,omitempty"`
	Schema         []etl.Attribute `json:"schema,omitempty"`
	Rows           int             `json:"rows,omitempty"`
	UpdatesPerHour float64         `json:"updatesPerHour,omitempty"`
	Seed           uint64          `json:"seed,omitempty"`
	NullRate       float64         `json:"nullRate,omitempty"`
	DupRate        float64         `json:"dupRate,omitempty"`
	ErrorRate      float64         `json:"errorRate,omitempty"`
}

// SelectionSnapshot serializes one SelectionRecord.
type SelectionSnapshot struct {
	Iteration   int     `json:"iteration"`
	Label       string  `json:"label"`
	ScoreBefore float64 `json:"scoreBefore"`
	ScoreAfter  float64 `json:"scoreAfter"`
}

// ResultSnapshot serializes a planning Result, including the full evaluated
// alternative space — not just the frontier — so a restored session can still
// integrate any skyline member by index and re-derive every projection
// (scatter, pattern usage, explanations) byte-identically.
type ResultSnapshot struct {
	Dims         []string              `json:"dims,omitempty"`
	Stats        StatsSnapshot         `json:"stats"`
	Initial      AlternativeSnapshot   `json:"initial"`
	Alternatives []AlternativeSnapshot `json:"alternatives,omitempty"`
	SkylineIdx   []int                 `json:"skylineIdx,omitempty"`
}

// StatsSnapshot serializes run statistics.
type StatsSnapshot struct {
	CandidatesSeen     int  `json:"candidatesSeen,omitempty"`
	Generated          int  `json:"generated,omitempty"`
	Deduped            int  `json:"deduped,omitempty"`
	Evaluated          int  `json:"evaluated,omitempty"`
	ConstraintRejected int  `json:"constraintRejected,omitempty"`
	StaticPruned       int  `json:"staticPruned,omitempty"`
	Capped             bool `json:"capped,omitempty"`
}

// AlternativeSnapshot serializes one evaluated design.
type AlternativeSnapshot struct {
	Flow         json.RawMessage       `json:"flow"`
	Applications []ApplicationSnapshot `json:"applications,omitempty"`
	Report       *ReportSnapshot       `json:"report,omitempty"`
	Err          string                `json:"error,omitempty"`
}

// ApplicationSnapshot serializes one pattern deployment.
type ApplicationSnapshot struct {
	Pattern string   `json:"pattern"`
	Kind    string   `json:"kind"`
	Node    string   `json:"node,omitempty"`
	From    string   `json:"from,omitempty"`
	To      string   `json:"to,omitempty"`
	Added   []string `json:"added,omitempty"`
}

// ReportSnapshot serializes a measure report tree.
type ReportSnapshot struct {
	Flow        string         `json:"flow,omitempty"`
	Fingerprint string         `json:"fingerprint,omitempty"`
	Chars       []CharSnapshot `json:"characteristics,omitempty"`
}

// CharSnapshot serializes one characteristic report.
type CharSnapshot struct {
	Characteristic string            `json:"characteristic"`
	Score          float64           `json:"score"`
	Measures       []MeasureSnapshot `json:"measures,omitempty"`
}

// MeasureSnapshot serializes one measure (recursively over its detail tree).
type MeasureSnapshot struct {
	Name           string            `json:"name"`
	Value          float64           `json:"value"`
	Unit           string            `json:"unit,omitempty"`
	HigherIsBetter bool              `json:"higherIsBetter,omitempty"`
	Detail         []MeasureSnapshot `json:"detail,omitempty"`
}

// Snapshot captures the session's durable state under the session lock. It
// is safe to call concurrently with accessors and with an in-flight
// exploration: the exploration publishes its result only after Snapshot's
// critical section, so the snapshot is simply taken before or after the run,
// never mid-write.
func (s *Session) Snapshot() (*SessionSnapshot, error) {
	s.mu.Lock()
	cur := s.current
	history := append([]SelectionRecord(nil), s.history...)
	last := s.last
	s.mu.Unlock()

	// Graphs are immutable once published (patterns apply to clones) and the
	// binding is immutable after construction, so serialization can happen
	// outside the lock.
	flow, err := json.Marshal(cur)
	if err != nil {
		return nil, fmt.Errorf("core: snapshotting flow: %w", err)
	}
	snap := &SessionSnapshot{
		Version: SnapshotFormatVersion,
		Flow:    flow,
		Binding: snapshotBinding(s.bind),
	}
	for _, rec := range history {
		snap.History = append(snap.History, SelectionSnapshot(rec))
	}
	if last != nil {
		rs, err := snapshotResult(last)
		if err != nil {
			return nil, err
		}
		snap.Last = rs
	}
	return snap, nil
}

// RestoreSession rebuilds a Session from a snapshot. The planner is supplied
// by the caller (nil uses the default planner) because planner options do not
// serialize — see SessionSnapshot. Snapshots written by a newer format
// version are rejected rather than half-loaded.
func RestoreSession(planner *Planner, snap *SessionSnapshot) (*Session, error) {
	if snap == nil {
		return nil, errors.New("core: RestoreSession: nil snapshot")
	}
	if snap.Version != SnapshotFormatVersion {
		return nil, fmt.Errorf("core: RestoreSession: unsupported snapshot format version %d (supported: %d)",
			snap.Version, SnapshotFormatVersion)
	}
	g, err := decodeSnapshotGraph(snap.Flow)
	if err != nil {
		return nil, fmt.Errorf("core: RestoreSession: current flow: %w", err)
	}
	if planner == nil {
		planner = NewPlanner(nil, Options{})
	}
	s := &Session{planner: planner, bind: restoreBinding(snap.Binding), current: g}
	for _, rec := range snap.History {
		s.history = append(s.history, SelectionRecord(rec))
	}
	if snap.Last != nil {
		res, err := restoreResult(snap.Last)
		if err != nil {
			return nil, fmt.Errorf("core: RestoreSession: last result: %w", err)
		}
		s.last = res
	}
	return s, nil
}

// SnapshotResult serializes one planning Result on its own — the full
// evaluated space, stats and skyline, exactly as SessionSnapshot embeds it.
// The HTTP service's shared plan-cache tier ships results between replicas
// in this form: restoring yields a Result that serves responses
// byte-identical to the original's.
func SnapshotResult(res *Result) (*ResultSnapshot, error) {
	if res == nil {
		return nil, errors.New("core: SnapshotResult: nil result")
	}
	return snapshotResult(res)
}

// RestoreResult rebuilds a Result from its snapshot.
func RestoreResult(rs *ResultSnapshot) (*Result, error) {
	if rs == nil {
		return nil, errors.New("core: RestoreResult: nil snapshot")
	}
	return restoreResult(rs)
}

func decodeSnapshotGraph(raw json.RawMessage) (*etl.Graph, error) {
	if len(raw) == 0 {
		return nil, errors.New("missing flow")
	}
	var g etl.Graph
	if err := g.UnmarshalJSON(raw); err != nil {
		return nil, err
	}
	return &g, nil
}

func snapshotBinding(bind sim.Binding) []SourceSnapshot {
	out := make([]SourceSnapshot, 0, len(bind))
	for id, spec := range bind {
		out = append(out, SourceSnapshot{
			Node:           string(id),
			Name:           spec.Name,
			Schema:         append([]etl.Attribute(nil), spec.Schema.Attrs...),
			Rows:           spec.Rows,
			UpdatesPerHour: spec.UpdatesPerHour,
			Seed:           spec.Seed,
			NullRate:       spec.Defects.NullRate,
			DupRate:        spec.Defects.DupRate,
			ErrorRate:      spec.Defects.ErrorRate,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

func restoreBinding(srcs []SourceSnapshot) sim.Binding {
	if len(srcs) == 0 {
		return sim.Binding{}
	}
	bind := make(sim.Binding, len(srcs))
	for _, s := range srcs {
		bind[etl.NodeID(s.Node)] = data.SourceSpec{
			Name:           s.Name,
			Schema:         etl.Schema{Attrs: append([]etl.Attribute(nil), s.Schema...)},
			Rows:           s.Rows,
			UpdatesPerHour: s.UpdatesPerHour,
			Seed:           s.Seed,
			Defects: data.Defects{
				NullRate:  s.NullRate,
				DupRate:   s.DupRate,
				ErrorRate: s.ErrorRate,
			},
		}
	}
	return bind
}

func snapshotResult(res *Result) (*ResultSnapshot, error) {
	initial, err := snapshotAlternative(&res.Initial)
	if err != nil {
		return nil, err
	}
	out := &ResultSnapshot{
		Dims:       dimsToStrings(res.Dims),
		Stats:      StatsSnapshot(res.Stats),
		Initial:    initial,
		SkylineIdx: append([]int(nil), res.SkylineIdx...),
	}
	for i := range res.Alternatives {
		alt, err := snapshotAlternative(&res.Alternatives[i])
		if err != nil {
			return nil, err
		}
		out.Alternatives = append(out.Alternatives, alt)
	}
	return out, nil
}

func restoreResult(rs *ResultSnapshot) (*Result, error) {
	initial, err := restoreAlternative(&rs.Initial)
	if err != nil {
		return nil, fmt.Errorf("initial: %w", err)
	}
	res := &Result{
		Initial: initial,
		Dims:    stringsToDims(rs.Dims),
		Stats:   Stats(rs.Stats),
	}
	for i := range rs.Alternatives {
		alt, err := restoreAlternative(&rs.Alternatives[i])
		if err != nil {
			return nil, fmt.Errorf("alternative %d: %w", i, err)
		}
		res.Alternatives = append(res.Alternatives, alt)
	}
	for _, idx := range rs.SkylineIdx {
		if idx < 0 || idx >= len(res.Alternatives) {
			return nil, fmt.Errorf("skyline index %d out of range [0,%d)", idx, len(res.Alternatives))
		}
		res.SkylineIdx = append(res.SkylineIdx, idx)
	}
	return res, nil
}

func snapshotAlternative(a *Alternative) (AlternativeSnapshot, error) {
	flow, err := json.Marshal(a.Graph)
	if err != nil {
		return AlternativeSnapshot{}, fmt.Errorf("core: snapshotting alternative flow: %w", err)
	}
	out := AlternativeSnapshot{Flow: flow, Report: snapshotReport(a.Report)}
	if a.Err != nil {
		out.Err = a.Err.Error()
	}
	for _, app := range a.Applications {
		as := ApplicationSnapshot{
			Pattern: app.Pattern,
			Kind:    app.Point.Kind.String(),
		}
		switch app.Point.Kind {
		case fcp.NodePoint:
			as.Node = string(app.Point.Node)
		case fcp.EdgePoint:
			as.From = string(app.Point.Edge.From)
			as.To = string(app.Point.Edge.To)
		}
		for _, id := range app.Added {
			as.Added = append(as.Added, string(id))
		}
		out.Applications = append(out.Applications, as)
	}
	return out, nil
}

func restoreAlternative(as *AlternativeSnapshot) (Alternative, error) {
	g, err := decodeSnapshotGraph(as.Flow)
	if err != nil {
		return Alternative{}, err
	}
	alt := Alternative{Graph: g, Report: restoreReport(as.Report)}
	if as.Err != "" {
		alt.Err = errors.New(as.Err)
	}
	for i, app := range as.Applications {
		fa := fcp.Application{Pattern: app.Pattern}
		switch app.Kind {
		case fcp.NodePoint.String():
			fa.Point = fcp.AtNode(etl.NodeID(app.Node))
		case fcp.EdgePoint.String():
			fa.Point = fcp.AtEdge(etl.NodeID(app.From), etl.NodeID(app.To))
		case fcp.GraphPoint.String():
			fa.Point = fcp.AtGraph()
		default:
			return Alternative{}, fmt.Errorf("application %d: unknown point kind %q", i, app.Kind)
		}
		for _, id := range app.Added {
			fa.Added = append(fa.Added, etl.NodeID(id))
		}
		alt.Applications = append(alt.Applications, fa)
	}
	return alt, nil
}

func snapshotReport(r *measures.Report) *ReportSnapshot {
	if r == nil {
		return nil
	}
	out := &ReportSnapshot{Flow: r.Flow, Fingerprint: r.Fingerprint}
	for _, cr := range r.Chars {
		cs := CharSnapshot{Characteristic: string(cr.Characteristic), Score: cr.Score}
		for _, m := range cr.Measures {
			cs.Measures = append(cs.Measures, snapshotMeasure(m))
		}
		out.Chars = append(out.Chars, cs)
	}
	return out
}

func restoreReport(rs *ReportSnapshot) *measures.Report {
	if rs == nil {
		return nil
	}
	out := &measures.Report{Flow: rs.Flow, Fingerprint: rs.Fingerprint}
	for _, cs := range rs.Chars {
		cr := measures.CharacteristicReport{
			Characteristic: measures.Characteristic(cs.Characteristic),
			Score:          cs.Score,
		}
		for _, m := range cs.Measures {
			cr.Measures = append(cr.Measures, restoreMeasure(m))
		}
		out.Chars = append(out.Chars, cr)
	}
	return out
}

func snapshotMeasure(m measures.Measure) MeasureSnapshot {
	out := MeasureSnapshot{
		Name: m.Name, Value: m.Value, Unit: m.Unit, HigherIsBetter: m.HigherIsBetter,
	}
	for _, d := range m.Detail {
		out.Detail = append(out.Detail, snapshotMeasure(d))
	}
	return out
}

func restoreMeasure(ms MeasureSnapshot) measures.Measure {
	out := measures.Measure{
		Name: ms.Name, Value: ms.Value, Unit: ms.Unit, HigherIsBetter: ms.HigherIsBetter,
	}
	for _, d := range ms.Detail {
		out.Detail = append(out.Detail, restoreMeasure(d))
	}
	return out
}

func dimsToStrings(dims []measures.Characteristic) []string {
	out := make([]string, len(dims))
	for i, d := range dims {
		out[i] = string(d)
	}
	return out
}

func stringsToDims(dims []string) []measures.Characteristic {
	out := make([]measures.Characteristic, len(dims))
	for i, d := range dims {
		out[i] = measures.Characteristic(d)
	}
	return out
}
