package core

import (
	"context"
	"fmt"

	"poiesis/internal/etl"
	"poiesis/internal/measures"
	"poiesis/internal/sim"
)

// Session drives the iterative redesign loop of the paper: "Based on
// measures and design, the user makes a selection decision and the tool
// implements this decision by integrating the corresponding patterns to the
// existing process ... Subsequently, new iteration cycles commence, until
// the user considers that the flow adequately satisfies quality goals."
type Session struct {
	planner *Planner
	bind    sim.Binding

	current *etl.Graph
	history []SelectionRecord
	last    *Result
}

// SelectionRecord captures one accepted redesign step.
type SelectionRecord struct {
	Iteration int
	Label     string
	// ScoreBefore/After are the mean composite scores over the skyline
	// dimensions, recording the quantitative improvement of the step.
	ScoreBefore float64
	ScoreAfter  float64
}

// NewSession starts an iterative redesign session on the initial flow.
func NewSession(planner *Planner, initial *etl.Graph, bind sim.Binding) *Session {
	return &Session{planner: planner, bind: bind, current: initial}
}

// Current returns the present process design.
func (s *Session) Current() *etl.Graph { return s.current }

// History returns the accepted steps so far.
func (s *Session) History() []SelectionRecord {
	return append([]SelectionRecord(nil), s.history...)
}

// LastResult returns the most recent planning result (nil before Explore).
func (s *Session) LastResult() *Result { return s.last }

// Explore runs one planning cycle on the current design and returns the
// result whose skyline the user chooses from.
func (s *Session) Explore() (*Result, error) {
	return s.ExploreContext(context.Background())
}

// ExploreContext is Explore with cancellation: an interactive UI can abort a
// long-running exploration (the planner's streaming pipeline drains and
// returns ctx's error) without tearing down the session — the current design
// and history are untouched, and a fresh Explore can follow.
func (s *Session) ExploreContext(ctx context.Context) (*Result, error) {
	res, err := s.planner.PlanContext(ctx, s.current, s.bind)
	if err != nil {
		return nil, err
	}
	s.last = res
	return res, nil
}

// Select accepts the skyline alternative with the given index into
// Result.SkylineIdx; the chosen design becomes the session's current
// process, and the next Explore iterates from it.
func (s *Session) Select(skyIdx int) (*Alternative, error) {
	if s.last == nil {
		return nil, fmt.Errorf("core: Select before Explore")
	}
	if skyIdx < 0 || skyIdx >= len(s.last.SkylineIdx) {
		return nil, fmt.Errorf("core: skyline index %d out of range [0,%d)", skyIdx, len(s.last.SkylineIdx))
	}
	alt := &s.last.Alternatives[s.last.SkylineIdx[skyIdx]]
	rec := SelectionRecord{
		Iteration:   len(s.history) + 1,
		Label:       alt.Label(),
		ScoreBefore: meanScore(s.last.Initial.Report, s.last.Dims),
		ScoreAfter:  meanScore(alt.Report, s.last.Dims),
	}
	s.history = append(s.history, rec)
	s.current = alt.Graph
	s.last = nil
	return alt, nil
}

func meanScore(r *measures.Report, dims []measures.Characteristic) float64 {
	if r == nil || len(dims) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range dims {
		sum += r.Score(d)
	}
	return sum / float64(len(dims))
}
