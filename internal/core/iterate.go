package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"poiesis/internal/etl"
	"poiesis/internal/measures"
	"poiesis/internal/sim"
)

// Session drives the iterative redesign loop of the paper: "Based on
// measures and design, the user makes a selection decision and the tool
// implements this decision by integrating the corresponding patterns to the
// existing process ... Subsequently, new iteration cycles commence, until
// the user considers that the flow adequately satisfies quality goals."
//
// Concurrency contract: a Session is safe for concurrent use by multiple
// goroutines. Accessors (Current, History, LastResult, Binding, Planner) and
// the state-changing calls (Select, AdoptResult) serialize on an internal
// mutex. An exploration marks the session busy for the duration of the
// planning run without holding the mutex, so accessors stay responsive while
// a long run is in flight; a second Explore — or a Select/AdoptResult —
// issued during that window fails fast with ErrSessionBusy instead of racing
// the iteration state. The binding is immutable after construction.
type Session struct {
	planner *Planner
	bind    sim.Binding

	mu      sync.Mutex
	busy    bool
	current *etl.Graph
	history []SelectionRecord
	last    *Result
}

// ErrSessionBusy reports that a Session operation was rejected because an
// exploration is already in flight on another goroutine. The session state
// is untouched; retry after the running exploration finishes (or cancel it
// via its context).
var ErrSessionBusy = errors.New("core: session busy: exploration in flight")

// SelectionRecord captures one accepted redesign step.
type SelectionRecord struct {
	Iteration int
	Label     string
	// ScoreBefore/After are the mean composite scores over the skyline
	// dimensions, recording the quantitative improvement of the step.
	ScoreBefore float64
	ScoreAfter  float64
}

// NewSession starts an iterative redesign session on the initial flow.
func NewSession(planner *Planner, initial *etl.Graph, bind sim.Binding) *Session {
	return &Session{planner: planner, bind: bind, current: initial}
}

// Current returns the present process design.
func (s *Session) Current() *etl.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current
}

// History returns the accepted steps so far.
func (s *Session) History() []SelectionRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SelectionRecord(nil), s.history...)
}

// LastResult returns the most recent planning result (nil before Explore).
func (s *Session) LastResult() *Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Binding returns the source binding the session was created with. The
// binding is shared, not copied; callers must treat it as read-only.
func (s *Session) Binding() sim.Binding { return s.bind }

// Planner returns the session's default planner.
func (s *Session) Planner() *Planner { return s.planner }

// Explore runs one planning cycle on the current design and returns the
// result whose skyline the user chooses from.
func (s *Session) Explore() (*Result, error) {
	return s.ExploreContext(context.Background())
}

// ExploreContext is Explore with cancellation: an interactive UI can abort a
// long-running exploration (the planner's streaming pipeline drains and
// returns ctx's error) without tearing down the session — the current design
// and history are untouched, and a fresh Explore can follow.
func (s *Session) ExploreContext(ctx context.Context) (*Result, error) {
	return s.ExploreWith(ctx, nil)
}

// ExploreWith runs one planning cycle with a caller-supplied planner instead
// of the session default (nil keeps the default) — the hook a multi-tenant
// service uses to honour per-request options, constraints and goals without
// rebuilding the session. Only one exploration may be in flight per session;
// a concurrent call returns ErrSessionBusy.
func (s *Session) ExploreWith(ctx context.Context, p *Planner) (*Result, error) {
	s.mu.Lock()
	if s.busy {
		s.mu.Unlock()
		return nil, ErrSessionBusy
	}
	if p == nil {
		p = s.planner
	}
	s.busy = true
	cur := s.current
	s.mu.Unlock()

	res, err := p.PlanContext(ctx, cur, s.bind)

	s.mu.Lock()
	s.busy = false
	if err == nil {
		s.last = res
	}
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return res, nil
}

// AdoptResult installs a planning result produced outside Explore — e.g.
// served from a fingerprint-keyed plan cache — as the session's last
// exploration, so a following Select can integrate one of its skyline
// designs. The result's initial flow must match the session's current design
// by canonical fingerprint; adopting a result computed for a different flow
// is rejected. Adopted results may be shared between sessions: planning and
// selection never mutate the graphs they carry (patterns always apply to
// clones), so the shared graphs are read-only.
func (s *Session) AdoptResult(res *Result) error {
	if res == nil || res.Initial.Graph == nil {
		return fmt.Errorf("core: AdoptResult: nil result")
	}
	fp := res.Initial.Graph.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.busy {
		return ErrSessionBusy
	}
	if cur := s.current.Fingerprint(); cur != fp {
		return fmt.Errorf("core: AdoptResult: result initial flow %s does not match current design %s", fp, cur)
	}
	s.last = res
	return nil
}

// Select accepts the skyline alternative with the given index into
// Result.SkylineIdx; the chosen design becomes the session's current
// process, and the next Explore iterates from it. Select during an in-flight
// exploration returns ErrSessionBusy.
func (s *Session) Select(skyIdx int) (*Alternative, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.busy {
		return nil, ErrSessionBusy
	}
	if s.last == nil {
		return nil, fmt.Errorf("core: Select before Explore")
	}
	if skyIdx < 0 || skyIdx >= len(s.last.SkylineIdx) {
		return nil, fmt.Errorf("core: skyline index %d out of range [0,%d)", skyIdx, len(s.last.SkylineIdx))
	}
	alt := &s.last.Alternatives[s.last.SkylineIdx[skyIdx]]
	rec := SelectionRecord{
		Iteration:   len(s.history) + 1,
		Label:       alt.Label(),
		ScoreBefore: meanScore(s.last.Initial.Report, s.last.Dims),
		ScoreAfter:  meanScore(alt.Report, s.last.Dims),
	}
	s.history = append(s.history, rec)
	s.current = alt.Graph
	s.last = nil
	return alt, nil
}

func meanScore(r *measures.Report, dims []measures.Characteristic) float64 {
	if r == nil || len(dims) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range dims {
		sum += r.Score(d)
	}
	return sum / float64(len(dims))
}
