package core

import (
	"reflect"
	"testing"

	"poiesis/internal/etl"
	"poiesis/internal/measures"
	"poiesis/internal/policy"
	"poiesis/internal/sim"
	"poiesis/internal/workloads"
)

// pruneOptions builds a run whose constraint set contains a structural Max
// bound tight enough to reject part of the generated space: the flow may
// grow by at most one inserted node, so every depth-2 double-insertion
// subtree is statically infeasible.
func pruneOptions(g *etl.Graph, mode PruneMode, streaming StreamingMode) Options {
	return Options{
		Policy: policy.Greedy{TopK: 2},
		Depth:  2,
		Constraints: []policy.Constraint{
			policy.MaxMeasure(measures.Manageability, measures.MSize, float64(g.Len()+1)),
		},
		Sim:         fastSim(),
		StaticPrune: mode,
		Streaming:   streaming,
	}
}

// TestStaticPruneSkylineUnchanged is the soundness acceptance check: with a
// binding structural Max constraint, pruning on and off must produce
// byte-identical alternative sets and skylines on every builtin workload —
// pruned flows are exactly the ones the constraint filter would have
// rejected after paying for evaluation.
func TestStaticPruneSkylineUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("plans every builtin workload twice")
	}
	prunedSomething := false
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			g, ok := workloads.Get(name)
			if !ok {
				t.Fatalf("unknown workload %s", name)
			}
			bind := sim.AutoBinding(g, 400, 1)

			on := NewPlanner(nil, pruneOptions(g, PruneOn, StreamingOff))
			resOn, err := on.Plan(g, bind)
			if err != nil {
				t.Fatal(err)
			}
			off := NewPlanner(nil, pruneOptions(g, PruneOff, StreamingOff))
			resOff, err := off.Plan(g, bind)
			if err != nil {
				t.Fatal(err)
			}

			assertSameSpace(t, resOn, resOff)

			// The split of the stats must shift, not the result: whatever the
			// pruner dropped, the baseline evaluated and rejected.
			if resOff.Stats.StaticPruned != 0 {
				t.Errorf("baseline claims %d pruned flows", resOff.Stats.StaticPruned)
			}
			if resOn.Stats.StaticPruned > 0 {
				prunedSomething = true
				if resOn.Stats.Evaluated >= resOff.Stats.Evaluated {
					t.Errorf("pruning did not save evaluations: %d pruned but %d vs %d evaluated",
						resOn.Stats.StaticPruned, resOn.Stats.Evaluated, resOff.Stats.Evaluated)
				}
			}

			// Streaming path places the prune at the same pipeline position;
			// its result must match the sequential pruned run.
			stream := NewPlanner(nil, pruneOptions(g, PruneOn, StreamingOn))
			resStream, err := stream.Plan(g, bind)
			if err != nil {
				t.Fatal(err)
			}
			assertSameSpace(t, resStream, resOn)
			if resStream.Stats.StaticPruned != resOn.Stats.StaticPruned {
				t.Errorf("streaming pruned %d, sequential pruned %d",
					resStream.Stats.StaticPruned, resOn.Stats.StaticPruned)
			}
		})
	}
	if !prunedSomething {
		t.Error("no workload triggered the pruner: the equivalence check is vacuous")
	}
}

// assertSameSpace compares two results' alternative spaces and skylines
// byte-for-byte: same order, same graphs, same reports, same frontier.
func assertSameSpace(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Alternatives) != len(b.Alternatives) {
		t.Fatalf("alternative counts differ: %d vs %d", len(a.Alternatives), len(b.Alternatives))
	}
	for i := range a.Alternatives {
		x, y := &a.Alternatives[i], &b.Alternatives[i]
		if x.Label() != y.Label() {
			t.Fatalf("alternative %d label: %q vs %q", i, x.Label(), y.Label())
		}
		if x.Graph.Fingerprint() != y.Graph.Fingerprint() {
			t.Fatalf("alternative %d (%s): fingerprints differ", i, x.Label())
		}
		if !reflect.DeepEqual(x.Report, y.Report) {
			t.Fatalf("alternative %d (%s): reports differ", i, x.Label())
		}
	}
	if !reflect.DeepEqual(a.SkylineIdx, b.SkylineIdx) {
		t.Fatalf("skylines differ: %v vs %v", a.SkylineIdx, b.SkylineIdx)
	}
}

// TestStaticPrunerSelectsBounds pins which constraints may prune: only Max
// bounds on monotone structural manageability measures.
func TestStaticPrunerSelectsBounds(t *testing.T) {
	mk := func(cs ...policy.Constraint) Options {
		return Options{Constraints: cs, Sim: fastSim()}
	}
	if sp := newStaticPruner(mk()); sp != nil {
		t.Error("pruner built with no constraints")
	}
	if sp := newStaticPruner(mk(policy.MinMeasure(measures.Manageability, measures.MSize, 2))); sp != nil {
		t.Error("a Min bound cannot prune: small values can still grow into range")
	}
	if sp := newStaticPruner(mk(policy.MaxMeasure(measures.Performance, measures.MCycleTime, 100))); sp != nil {
		t.Error("a simulated measure cannot prune statically")
	}
	if sp := newStaticPruner(mk(policy.MaxMeasure(measures.Manageability, measures.MCoupling, 3))); sp != nil {
		t.Error("coupling is not monotone and must not prune")
	}
	sp := newStaticPruner(mk(
		policy.MaxMeasure(measures.Manageability, measures.MSize, 5),
		policy.MaxMeasure(measures.Manageability, measures.MLongestPath, 4),
		policy.MinScore(measures.Performance, 0.1),
	))
	if sp == nil || len(sp.bounds) != 2 {
		t.Fatalf("pruner bounds = %+v, want the two structural Max bounds", sp)
	}

	opts := mk(policy.MaxMeasure(measures.Manageability, measures.MSize, 5))
	opts.StaticPrune = PruneOff
	if newStaticPruner(opts) != nil {
		t.Error("PruneOff must disable the pruner entirely")
	}
}

func TestStaticPrunerPrune(t *testing.T) {
	var nilPruner *staticPruner
	if nilPruner.prune(nil) {
		t.Error("nil pruner pruned")
	}
	g, _ := workloads.Get("tpcds-purchases")
	max := float64(g.Len())
	sp := newStaticPruner(Options{Constraints: []policy.Constraint{
		policy.MaxMeasure(measures.Manageability, measures.MSize, max),
	}})
	if sp.prune(g) {
		t.Error("flow at the bound pruned: the bound is inclusive")
	}
	tight := newStaticPruner(Options{Constraints: []policy.Constraint{
		policy.MaxMeasure(measures.Manageability, measures.MSize, max-1),
	}})
	if !tight.prune(g) {
		t.Error("flow past the bound not pruned")
	}
}

// TestLintBoundsRoundTrip checks that the options' constraints surface to
// etl.Lint with the bound values the planner enforces.
func TestLintBoundsRoundTrip(t *testing.T) {
	opts := Options{Constraints: []policy.Constraint{
		policy.MaxMeasure(measures.Manageability, measures.MSize, 7),
		policy.MinScore(measures.Performance, 0.25),
	}}
	bounds := opts.LintBounds()
	if len(bounds) != 2 {
		t.Fatalf("LintBounds = %+v", bounds)
	}
	if bounds[0].Characteristic != "manageability" || bounds[0].Measure != measures.MSize ||
		bounds[0].Max == nil || *bounds[0].Max != 7 || bounds[0].Min != nil {
		t.Errorf("max bound mapped wrong: %+v", bounds[0])
	}
	if bounds[1].Characteristic != "performance" || bounds[1].Measure != "" ||
		bounds[1].Min == nil || *bounds[1].Min != 0.25 {
		t.Errorf("minScore bound mapped wrong: %+v", bounds[1])
	}
}
