package core

import "sync"

// fpShardCount sizes the fingerprint set's lock striping. Sixteen shards keep
// contention negligible for the worker counts the planner runs with (a few ×
// GOMAXPROCS) without wasting memory on tiny runs.
const fpShardCount = 16

// fingerprintSet is a set of canonical flow fingerprints with striped locking,
// safe for concurrent producers: the streaming pipeline prefetches candidate
// chunks, so the apply workers of chunk k+1 probe it with Contains while the
// commit stage inserts chunk k's fingerprints with Add. Entries are never
// removed, so a true Contains answer is authoritative even under concurrency;
// a false answer is only a hint, settled by Add in deterministic commit order.
type fingerprintSet struct {
	shards [fpShardCount]fpShard
}

type fpShard struct {
	mu sync.Mutex
	m  map[string]struct{}
}

func newFingerprintSet() *fingerprintSet {
	s := &fingerprintSet{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]struct{})
	}
	return s
}

// shard maps a fingerprint to its stripe by FNV-1a.
func (s *fingerprintSet) shard(fp string) *fpShard {
	h := uint64(1469598103934665603)
	for i := 0; i < len(fp); i++ {
		h ^= uint64(fp[i])
		h *= 1099511628211
	}
	return &s.shards[h%fpShardCount]
}

// Add inserts the fingerprint, reporting whether it was newly added.
func (s *fingerprintSet) Add(fp string) bool {
	sh := s.shard(fp)
	sh.mu.Lock()
	_, dup := sh.m[fp]
	if !dup {
		sh.m[fp] = struct{}{}
	}
	sh.mu.Unlock()
	return !dup
}

// Contains reports whether the fingerprint is present.
func (s *fingerprintSet) Contains(fp string) bool {
	sh := s.shard(fp)
	sh.mu.Lock()
	_, ok := sh.m[fp]
	sh.mu.Unlock()
	return ok
}

// Len returns the number of distinct fingerprints.
func (s *fingerprintSet) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.Lock()
		n += len(s.shards[i].m)
		s.shards[i].mu.Unlock()
	}
	return n
}
