package core

import (
	"testing"

	"poiesis/internal/etl"
	"poiesis/internal/fcp"
	"poiesis/internal/measures"
	"poiesis/internal/policy"
	"poiesis/internal/tpcds"
)

func TestPlanKeyDeterministic(t *testing.T) {
	g := tpcds.PurchasesFlow()
	bind := tpcds.Binding(g, 800, 1)
	opts := smallOptions()

	k1, ok1 := PlanKey(g, bind, opts)
	k2, ok2 := PlanKey(tpcds.PurchasesFlow(), tpcds.Binding(tpcds.PurchasesFlow(), 800, 1), smallOptions())
	if !ok1 || !ok2 {
		t.Fatal("small options should be cacheable")
	}
	if k1 != k2 {
		t.Errorf("identical requests produced different keys: %s vs %s", k1, k2)
	}
}

func TestPlanKeyDiscriminates(t *testing.T) {
	g := tpcds.PurchasesFlow()
	bind := tpcds.Binding(g, 800, 1)
	base, ok := PlanKey(g, bind, smallOptions())
	if !ok {
		t.Fatal("base not cacheable")
	}

	variants := map[string]func() (string, bool){
		"depth": func() (string, bool) {
			o := smallOptions()
			o.Depth = 3
			return PlanKey(g, bind, o)
		},
		"policy": func() (string, bool) {
			o := smallOptions()
			o.Policy = policy.Exhaustive{}
			return PlanKey(g, bind, o)
		},
		"topk": func() (string, bool) {
			o := smallOptions()
			o.Policy = policy.Greedy{TopK: 5}
			return PlanKey(g, bind, o)
		},
		"dims": func() (string, bool) {
			o := smallOptions()
			o.Dims = []measures.Characteristic{measures.Cost, measures.Performance}
			return PlanKey(g, bind, o)
		},
		"constraints": func() (string, bool) {
			o := smallOptions()
			o.Constraints = []policy.Constraint{policy.MinScore(measures.Performance, 0.5)}
			return PlanKey(g, bind, o)
		},
		"sim_seed": func() (string, bool) {
			o := smallOptions()
			o.Sim.Seed = 99
			return PlanKey(g, bind, o)
		},
		"binding": func() (string, bool) {
			return PlanKey(g, tpcds.Binding(g, 900, 1), smallOptions())
		},
		"flow": func() (string, bool) {
			g2 := tpcds.SalesETL()
			return PlanKey(g2, bind, smallOptions())
		},
		"dedup": func() (string, bool) {
			o := smallOptions()
			o.DisableDedup = true
			return PlanKey(g, bind, o)
		},
		"goals": func() (string, bool) {
			o := smallOptions()
			o.Policy = policy.GoalDriven{
				TopK:  2,
				Goals: policy.NewGoals(map[measures.Characteristic]float64{measures.Performance: 2}),
			}
			return PlanKey(g, bind, o)
		},
	}
	seen := map[string]string{"base": base}
	for name, mk := range variants {
		k, ok := mk()
		if !ok {
			t.Errorf("%s: variant unexpectedly not cacheable", name)
			continue
		}
		for prev, pk := range seen {
			if k == pk {
				t.Errorf("%s collides with %s", name, prev)
			}
		}
		seen[name] = k
	}
}

// Workers, Streaming and Progress do not influence results, so they must not
// influence the key either — otherwise identical requests from differently
// sized clients would miss the cache.
func TestPlanKeyIgnoresExecutionKnobs(t *testing.T) {
	g := tpcds.PurchasesFlow()
	bind := tpcds.Binding(g, 800, 1)
	base, _ := PlanKey(g, bind, smallOptions())

	o := smallOptions()
	o.Workers = 1
	o.Streaming = StreamingOff
	o.Progress = func(ProgressEvent) {}
	k, ok := PlanKey(g, bind, o)
	if !ok {
		t.Fatal("execution knobs must not block caching")
	}
	if k != base {
		t.Error("Workers/Streaming/Progress changed the key")
	}
}

func TestPlanKeyUncacheable(t *testing.T) {
	g := tpcds.PurchasesFlow()
	bind := tpcds.Binding(g, 800, 1)

	o := smallOptions()
	o.CustomMeasures = []measures.CustomMeasure{{Name: "x"}}
	if _, ok := PlanKey(g, bind, o); ok {
		t.Error("custom measures must not be cacheable")
	}

	o = smallOptions()
	o.Policy = fakePolicy{}
	if _, ok := PlanKey(g, bind, o); ok {
		t.Error("unknown policy implementations must not be cacheable")
	}

	if _, ok := PlanKey(nil, bind, smallOptions()); ok {
		t.Error("nil flow must not be cacheable")
	}
}

type fakePolicy struct{}

func (fakePolicy) Name() string { return "fake" }
func (fakePolicy) Propose(g *etl.Graph, palette []fcp.Pattern) []policy.Candidate {
	return nil
}
