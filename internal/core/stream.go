package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"poiesis/internal/etl"
	"poiesis/internal/fcp"
	"poiesis/internal/measures"
	"poiesis/internal/obs"
	"poiesis/internal/policy"
	"poiesis/internal/sim"
	"poiesis/internal/skyline"
)

// StreamingMode selects the planner's execution pipeline.
type StreamingMode int

const (
	// StreamingOn (the zero value, hence the default) runs the concurrent
	// streaming pipeline: candidate application feeds a bounded channel,
	// evaluation workers consume it as alternatives appear, and the Pareto
	// frontier is maintained incrementally in-stream.
	StreamingOn StreamingMode = iota
	// StreamingOff runs the sequential three-stage path — full generation,
	// then pooled evaluation, then one skyline pass — kept for the A-series
	// ablations and as the behavioural oracle for the streaming pipeline.
	StreamingOff
)

// DeltaMode selects the planner's per-alternative evaluation strategy
// (Options.DeltaEval).
type DeltaMode int

const (
	// DeltaOn (the zero value, hence the default) shares one sim.EvalCache
	// across the planning run: every node's materialized output is memoized
	// by its upstream-cone fingerprint, so evaluating a candidate costs work
	// proportional to the region its pattern application changed, not to the
	// whole flow. The cache is scoped to the run (one engine configuration,
	// one binding) and is safe under the concurrent evaluation pool.
	DeltaOn DeltaMode = iota
	// DeltaOff evaluates every alternative from scratch — the behavioural
	// oracle delta evaluation is tested against, and the baseline of the A5
	// ablation benchmark.
	DeltaOff
)

// ColumnarMode selects the simulation engine's data representation
// (Options.Columnar).
type ColumnarMode int

const (
	// ColumnarOn (the zero value, hence the default) runs the columnar
	// engine: node outputs are typed column batches with selection vectors,
	// operator kernels are per-column loops, and dedup/partition hashing is
	// column-wise. Profiles are byte-identical to the row engine's.
	ColumnarOn ColumnarMode = iota
	// ColumnarOff runs the row-at-a-time engine — the behavioural oracle the
	// columnar path is validated against, and the baseline of the A8
	// ablation benchmark.
	ColumnarOff
)

// ProgressEvent describes one alternative as the streaming pipeline finishes
// processing it. Events are delivered in generation order from a single
// goroutine, so callbacks need no synchronisation of their own.
type ProgressEvent struct {
	// Seq is the alternative's position in generation order (0-based).
	Seq int
	// Label is the alternative's application history label.
	Label string
	// Err is the alternative's evaluation failure, if any.
	Err error
	// Generated is the number of alternatives generated so far (post-dedup);
	// it may still grow while evaluation is in flight.
	Generated int
	// Evaluated counts alternatives whose measures have been estimated.
	Evaluated int
	// Kept counts evaluated alternatives that satisfied all constraints.
	Kept int
	// SkylineSize is the current size of the incremental Pareto frontier.
	SkylineSize int
	// StageNs holds the cumulative wall time (nanoseconds, summed across
	// workers) each planner stage has consumed so far in this run, so
	// progress consumers can watch where the time is going while the
	// pipeline streams.
	StageNs StageNanos
}

// streamItem carries one freshly generated alternative through the pipeline
// with its deterministic generation-order sequence number.
type streamItem struct {
	seq int
	alt Alternative
}

// planStream runs the concurrent streaming pipeline. Three stages overlap:
//
//	generate — one goroutine proposes candidates round by round, fans the
//	           clone+apply+fingerprint work out to apply workers, commits
//	           dedup decisions in deterministic candidate order, and emits
//	           accepted alternatives into a bounded channel;
//	evaluate — a worker pool consumes alternatives as they arrive (the
//	           paper's elastic evaluation nodes), overlapping measure
//	           estimation with generation instead of waiting for the full
//	           space;
//	collect  — a reorder buffer restores generation order, applies the
//	           constraint filter in-stream, feeds the incremental skyline,
//	           and fires the progress callback.
//
// The committed order equals the sequential path's, so the resulting
// alternative set, stats and skyline are identical to StreamingOff.
func (p *Planner) planStream(ctx context.Context, initial *etl.Graph, bind sim.Binding, palette []fcp.Pattern, ev *evaluator, est *measures.Estimator, res *Result, clock *stageClock) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := p.opts.Workers
	genCh := make(chan streamItem, 2*workers)
	evalCh := make(chan streamItem, 2*workers)

	// generated is written by the generator and read by the collector for
	// progress events, hence atomic.
	var generated atomic.Int64

	var genStats Stats
	var genErr error
	var wgGen sync.WaitGroup
	wgGen.Add(1)
	go func() {
		defer wgGen.Done()
		defer close(genCh)
		genStats, genErr = p.streamGenerate(ctx, initial, palette, genCh, &generated, clock)
	}()

	sp := obs.SpanFrom(ctx)
	var wgEval sync.WaitGroup
	for w := 0; w < workers; w++ {
		wgEval.Add(1)
		go func() {
			defer wgEval.Done()
			for it := range genCh {
				if ctx.Err() != nil {
					return
				}
				start := time.Now()
				var es *sim.ExecStats
				if sp != nil {
					es = &sim.ExecStats{}
				}
				profile, batch, err := ev.evaluate(it.alt.Graph, bind, es)
				if err != nil {
					it.alt.Err = err
				} else {
					it.alt.Report = est.Estimate(it.alt.Graph, profile, batch)
				}
				clock.observe(siEval, start)
				recordAlternative(sp, &it.alt, ev.cache != nil, es, start)
				select {
				case evalCh <- it:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wgEval.Wait()
		close(evalCh)
	}()

	// Collect: a reorder buffer turns out-of-order worker completions back
	// into generation order so constraint filtering, the kept list, the
	// incremental skyline and progress events are all deterministic.
	inc := skyline.NewIncremental()
	pending := make(map[int]streamItem)
	nextSeq := 0
	var kept []Alternative
	evaluated, rejected := 0, 0
	for it := range evalCh {
		pending[it.seq] = it
		for {
			nxt, ok := pending[nextSeq]
			if !ok {
				break
			}
			delete(pending, nextSeq)
			if nxt.alt.Err == nil && nxt.alt.Report != nil {
				evaluated++
				filterStart := time.Now()
				ok, _ := policy.CheckAll(nxt.alt.Report, p.opts.Constraints)
				clock.observe(siFilter, filterStart)
				if !ok {
					rejected++
				} else {
					kept = append(kept, nxt.alt)
					mergeStart := time.Now()
					inc.Add(len(kept)-1, nxt.alt.Report.Vector(p.opts.Dims))
					clock.observe(siMerge, mergeStart)
				}
			}
			if p.opts.Progress != nil {
				p.opts.Progress(ProgressEvent{
					Seq:         nxt.seq,
					Label:       nxt.alt.Label(),
					Err:         nxt.alt.Err,
					Generated:   int(generated.Load()),
					Evaluated:   evaluated,
					Kept:        len(kept),
					SkylineSize: inc.Len(),
					StageNs:     clock.snapshot(),
				})
			}
			nextSeq++
		}
	}
	wgGen.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	if genErr != nil {
		return genErr
	}
	res.Stats = genStats
	res.Stats.Evaluated = evaluated
	res.Stats.ConstraintRejected = rejected
	res.Alternatives = kept
	res.SkylineIdx = inc.Indices()
	return nil
}

// streamGenerate is the generation stage: breadth-first over rounds like the
// sequential path, but the clone+apply+fingerprint work runs on parallel
// apply workers in chunks, with the next chunk prefetched while the current
// one's dedup decisions are committed in candidate order — preserving the
// sequential path's alternative set, labels and stats exactly. Chunking also
// bounds the work wasted when MaxAlternatives stops a round mid-batch.
// Accepted alternatives are emitted immediately so evaluation overlaps
// generation.
func (p *Planner) streamGenerate(ctx context.Context, initial *etl.Graph, palette []fcp.Pattern, out chan<- streamItem, generated *atomic.Int64, clock *stageClock) (Stats, error) {
	var stats Stats
	seen := newFingerprintSet()
	seen.Add(initial.Fingerprint())
	frontier := []Alternative{{Graph: initial}}
	pruner := newStaticPruner(p.opts)
	seq := 0

	chunk := p.opts.Workers * 8
	if chunk < 32 {
		chunk = 32
	}
	for round := 0; round < p.opts.Depth; round++ {
		var next []Alternative
		for i := range frontier {
			cur := &frontier[i]
			if err := ctx.Err(); err != nil {
				return stats, err
			}
			cands := p.opts.Policy.Propose(cur.Graph, palette)
			stats.CandidatesSeen += len(cands)
			// Prefetch one chunk ahead: the apply workers of chunk k+1 probe
			// the fingerprint set while the committer inserts chunk k's.
			fetch := func(start int) chan []applyResult {
				end := start + chunk
				if end > len(cands) {
					end = len(cands)
				}
				ch := make(chan []applyResult, 1)
				go func() {
					t0 := time.Now()
					results := p.applyBatch(ctx, cur, cands[start:end], seen)
					clock.observe(siApply, t0)
					ch <- results
				}()
				return ch
			}
			var ahead chan []applyResult
			if len(cands) > 0 {
				ahead = fetch(0)
			}
			for start := 0; start < len(cands); start += chunk {
				results := <-ahead
				if start+chunk < len(cands) {
					ahead = fetch(start + chunk)
				}
				for _, r := range results {
					if seq >= p.opts.MaxAlternatives {
						stats.Capped = true
						return stats, nil
					}
					if r.graph == nil {
						// Application failed (or was skipped on cancellation —
						// caught by the ctx checks around this loop).
						continue
					}
					stats.Generated++
					if !p.opts.DisableDedup {
						// r.dup is the apply workers' concurrent fast-path
						// probe; the set is add-only, so true is
						// authoritative. Add settles the racy false case in
						// commit order.
						if r.dup || !seen.Add(r.fp) {
							stats.Deduped++
							continue
						}
					}
					// Same position as the sequential path: after dedup,
					// before emission, so both pipelines prune identically.
					if pruner.prune(r.graph) {
						stats.StaticPruned++
						continue
					}
					alt := Alternative{
						Graph:        r.graph,
						Applications: append(append([]fcp.Application(nil), cur.Applications...), r.app),
					}
					next = append(next, alt)
					generated.Store(int64(seq + 1))
					select {
					case out <- streamItem{seq: seq, alt: alt}:
					case <-ctx.Done():
						return stats, ctx.Err()
					}
					seq++
				}
			}
		}
		if len(next) == 0 {
			break
		}
		frontier = next
	}
	return stats, nil
}

// applyResult is one candidate application computed by the apply workers.
type applyResult struct {
	graph *etl.Graph
	app   fcp.Application
	fp    string
	dup   bool
}

// applyBatch clones the parent flow and applies every candidate on a bounded
// worker pool, returning results in candidate order. Fingerprints are
// computed by the workers, which also probe the shared fingerprint set
// concurrently with the committer's inserts.
func (p *Planner) applyBatch(ctx context.Context, cur *Alternative, cands []policy.Candidate, seen *fingerprintSet) []applyResult {
	results := make([]applyResult, len(cands))
	if len(cands) == 0 {
		return results
	}
	apply := func(i int) {
		clone := cur.Graph.Clone()
		app, err := cands[i].Pattern.Apply(clone, cands[i].Point)
		if err != nil {
			// The candidate was valid at proposal time; application can only
			// fail on programming errors, which tests catch. Leave the slot
			// empty so the committer skips it.
			return
		}
		results[i].graph, results[i].app = clone, app
		if !p.opts.DisableDedup {
			results[i].fp = clone.Fingerprint()
			results[i].dup = seen.Contains(results[i].fp)
		}
	}
	// Half the Workers budget: the apply pool runs concurrently with the
	// eval pool (prefetched chunks overlap evaluation), so sizing both at
	// Workers would oversubscribe the CPU to ~2x GOMAXPROCS.
	workers := p.opts.Workers / 2
	if workers < 1 {
		workers = 1
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		for i := range cands {
			apply(i)
		}
		return results
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(cands) || ctx.Err() != nil {
					return
				}
				apply(i)
			}
		}()
	}
	wg.Wait()
	return results
}
