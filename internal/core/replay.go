package core

import (
	"fmt"
	"sort"
	"strings"

	"poiesis/internal/etl"
	"poiesis/internal/fcp"
	"poiesis/internal/measures"
)

// Replay re-applies a recorded application history onto a fresh clone of
// the initial flow: "the user makes a selection decision and the tool
// implements this decision by integrating the corresponding patterns to the
// existing process". Because pattern application and fresh-ID generation are
// deterministic, replaying the history of an alternative reproduces a flow
// with the identical canonical fingerprint — verified by ReplayVerified.
func Replay(reg *fcp.Registry, initial *etl.Graph, apps []fcp.Application) (*etl.Graph, error) {
	if reg == nil {
		reg = fcp.DefaultRegistry()
	}
	g := initial.Clone()
	for i, app := range apps {
		pat, ok := reg.Get(app.Pattern)
		if !ok {
			return nil, fmt.Errorf("core: replay step %d: unknown pattern %q", i, app.Pattern)
		}
		if _, err := pat.Apply(g, app.Point); err != nil {
			return nil, fmt.Errorf("core: replay step %d (%s): %w", i, app, err)
		}
	}
	return g, nil
}

// ReplayVerified replays the history and checks the result against the
// expected design's fingerprint, guarding against registry drift (e.g. a
// reconfigured pattern that no longer produces the evaluated design).
func ReplayVerified(reg *fcp.Registry, initial *etl.Graph, alt *Alternative) (*etl.Graph, error) {
	g, err := Replay(reg, initial, alt.Applications)
	if err != nil {
		return nil, err
	}
	if got, want := g.Fingerprint(), alt.Graph.Fingerprint(); got != want {
		return nil, fmt.Errorf("core: replay mismatch: fingerprint %s, evaluated design has %s", got, want)
	}
	return g, nil
}

// Explanation says why one skyline member is presented: on which dimensions
// it leads the frontier and what it trades away, plus its structural delta
// against the initial flow.
type Explanation struct {
	Label  string
	Scores map[measures.Characteristic]float64
	// LeadsOn lists dimensions where the design attains the frontier
	// maximum.
	LeadsOn []measures.Characteristic
	// WeakestOn is the dimension where the design ranks worst within the
	// frontier (its trade-off).
	WeakestOn measures.Characteristic
	// Delta summarises the structural change against the initial flow.
	Delta etl.Diff
}

// String renders a one-line explanation.
func (e Explanation) String() string {
	leads := make([]string, len(e.LeadsOn))
	for i, c := range e.LeadsOn {
		leads[i] = string(c)
	}
	lead := "a balanced trade-off"
	if len(leads) > 0 {
		lead = "best " + strings.Join(leads, ", ")
	}
	return fmt.Sprintf("%s: %s; weakest on %s; changes: %s",
		e.Label, lead, e.WeakestOn, e.Delta)
}

// ExplainSkyline produces an explanation for every frontier member of a
// result, in skyline order.
func ExplainSkyline(res *Result) []Explanation {
	sky := res.Skyline()
	if len(sky) == 0 {
		return nil
	}
	// Frontier maxima per dimension.
	maxPerDim := make([]float64, len(res.Dims))
	for d := range res.Dims {
		for _, a := range sky {
			if v := a.Report.Score(res.Dims[d]); v > maxPerDim[d] {
				maxPerDim[d] = v
			}
		}
	}
	out := make([]Explanation, 0, len(sky))
	for _, a := range sky {
		e := Explanation{
			Label:  a.Label(),
			Scores: map[measures.Characteristic]float64{},
			Delta:  etl.DiffFlows(res.Initial.Graph, a.Graph),
		}
		// Rank within frontier per dimension to find the weakest.
		worstRankDim := res.Dims[0]
		worstRank := -1
		for d, dim := range res.Dims {
			v := a.Report.Score(dim)
			e.Scores[dim] = v
			if v >= maxPerDim[d]-1e-12 {
				e.LeadsOn = append(e.LeadsOn, dim)
			}
			rank := 0
			for _, other := range sky {
				if other.Report.Score(dim) > v {
					rank++
				}
			}
			if rank > worstRank {
				worstRank, worstRankDim = rank, dim
			}
		}
		e.WeakestOn = worstRankDim
		out = append(out, e)
	}
	return out
}

// FrontierSpread reports, per dimension, the min and max score across the
// skyline — the extent of the trade-off space the analyst is choosing in.
func FrontierSpread(res *Result) map[measures.Characteristic][2]float64 {
	out := map[measures.Characteristic][2]float64{}
	sky := res.Skyline()
	if len(sky) == 0 {
		return out
	}
	for _, dim := range res.Dims {
		lo, hi := sky[0].Report.Score(dim), sky[0].Report.Score(dim)
		for _, a := range sky[1:] {
			v := a.Report.Score(dim)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		out[dim] = [2]float64{lo, hi}
	}
	return out
}

// PatternUsage counts, over all alternatives of a result, how often each
// pattern appears and how often it appears in skyline members — the
// "correlations among design choices and quality characteristics" analysis
// the paper's introduction motivates.
type PatternUsage struct {
	Pattern      string
	Applications int
	InSkyline    int
}

// AnalyzePatternUsage aggregates pattern usage across the result.
func AnalyzePatternUsage(res *Result) []PatternUsage {
	counts := map[string]*PatternUsage{}
	bump := func(name string, sky bool) {
		u := counts[name]
		if u == nil {
			u = &PatternUsage{Pattern: name}
			counts[name] = u
		}
		u.Applications++
		if sky {
			u.InSkyline++
		}
	}
	inSky := map[int]bool{}
	for _, i := range res.SkylineIdx {
		inSky[i] = true
	}
	for i := range res.Alternatives {
		for _, app := range res.Alternatives[i].Applications {
			bump(app.Pattern, inSky[i])
		}
	}
	out := make([]PatternUsage, 0, len(counts))
	for _, u := range counts {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].InSkyline != out[j].InSkyline {
			return out[i].InSkyline > out[j].InSkyline
		}
		return out[i].Pattern < out[j].Pattern
	})
	return out
}
