package core

import (
	"strings"
	"testing"

	"poiesis/internal/fcp"
	"poiesis/internal/tpcds"
)

func TestReplayReproducesAlternatives(t *testing.T) {
	res := plan(t, smallOptions())
	initial := tpcds.PurchasesFlow()
	for _, a := range res.Alternatives {
		g, err := Replay(nil, initial, a.Applications)
		if err != nil {
			t.Fatalf("replay %s: %v", a.Label(), err)
		}
		if g.Fingerprint() != a.Graph.Fingerprint() {
			t.Errorf("replay of %s produced a different design", a.Label())
		}
	}
}

func TestReplayVerified(t *testing.T) {
	res := plan(t, smallOptions())
	initial := tpcds.PurchasesFlow()
	alt := &res.Alternatives[0]
	if _, err := ReplayVerified(nil, initial, alt); err != nil {
		t.Fatal(err)
	}
	// Tampering with the expected design must be caught.
	tampered := *alt
	tampered.Graph = initial
	if _, err := ReplayVerified(nil, initial, &tampered); err == nil {
		t.Error("mismatch not detected")
	}
}

func TestReplayErrors(t *testing.T) {
	initial := tpcds.PurchasesFlow()
	if _, err := Replay(nil, initial, []fcp.Application{{Pattern: "nope"}}); err == nil {
		t.Error("unknown pattern should fail")
	}
	if _, err := Replay(nil, initial, []fcp.Application{
		{Pattern: fcp.NameAddCheckpoint, Point: fcp.AtEdge("a", "b")},
	}); err == nil {
		t.Error("invalid point should fail")
	}
	// Replay must not mutate the initial flow even on failure.
	if initial.GeneratedCount() != 0 {
		t.Error("Replay mutated the initial flow")
	}
}

func TestExplainSkyline(t *testing.T) {
	res := plan(t, smallOptions())
	exps := ExplainSkyline(res)
	if len(exps) != len(res.SkylineIdx) {
		t.Fatalf("explanations = %d, skyline = %d", len(exps), len(res.SkylineIdx))
	}
	// Every frontier dimension maximum must be claimed by someone.
	claimed := map[string]bool{}
	for _, e := range exps {
		for _, d := range e.LeadsOn {
			claimed[string(d)] = true
		}
		if len(e.Scores) != len(res.Dims) {
			t.Errorf("scores incomplete for %s", e.Label)
		}
		if e.WeakestOn == "" {
			t.Errorf("no weakest dimension for %s", e.Label)
		}
		if e.Delta.IsEmpty() {
			t.Errorf("skyline member %s has no structural delta", e.Label)
		}
		if s := e.String(); !strings.Contains(s, e.Label) {
			t.Errorf("explanation string = %q", s)
		}
	}
	for _, d := range res.Dims {
		if !claimed[string(d)] {
			t.Errorf("no skyline member leads on %s", d)
		}
	}
	if got := ExplainSkyline(&Result{}); got != nil {
		t.Error("empty result should explain to nil")
	}
}

func TestFrontierSpread(t *testing.T) {
	res := plan(t, smallOptions())
	spread := FrontierSpread(res)
	if len(spread) != len(res.Dims) {
		t.Fatalf("spread dims = %d", len(spread))
	}
	for dim, mm := range spread {
		if mm[0] > mm[1] {
			t.Errorf("%s: min %f > max %f", dim, mm[0], mm[1])
		}
		if mm[1] < 0 || mm[1] > 1 {
			t.Errorf("%s: max out of range", dim)
		}
	}
	if got := FrontierSpread(&Result{}); len(got) != 0 {
		t.Error("empty result should have empty spread")
	}
}

func TestAnalyzePatternUsage(t *testing.T) {
	res := plan(t, smallOptions())
	usage := AnalyzePatternUsage(res)
	if len(usage) == 0 {
		t.Fatal("no pattern usage")
	}
	total := 0
	for _, u := range usage {
		if u.InSkyline > u.Applications {
			t.Errorf("%s: skyline count exceeds applications", u.Pattern)
		}
		total += u.Applications
	}
	want := 0
	for _, a := range res.Alternatives {
		want += len(a.Applications)
	}
	if total != want {
		t.Errorf("total applications %d != %d", total, want)
	}
	// Sorted best-first by skyline presence.
	for i := 0; i+1 < len(usage); i++ {
		if usage[i].InSkyline < usage[i+1].InSkyline {
			t.Error("usage not sorted by skyline presence")
		}
	}
}
