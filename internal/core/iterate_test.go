package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"poiesis/internal/tpcds"
)

func newTestSession(t testing.TB) *Session {
	t.Helper()
	g := tpcds.PurchasesFlow()
	return NewSession(NewPlanner(nil, smallOptions()), g, tpcds.Binding(g, 400, 1))
}

// A second exploration issued while one is in flight must fail fast with
// ErrSessionBusy, and Select/AdoptResult during the window likewise.
func TestSessionBusyGuard(t *testing.T) {
	s := newTestSession(t)

	started := make(chan struct{})
	release := make(chan struct{})
	// Progress fires once per alternative from inside the run: use the first
	// event to hold the exploration open deterministically.
	var once sync.Once
	p := NewPlanner(nil, smallOptions())
	p.WithProgress(func(ProgressEvent) {
		once.Do(func() {
			close(started)
			<-release
		})
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.ExploreWith(context.Background(), p); err != nil {
			t.Errorf("explore failed: %v", err)
		}
	}()
	<-started

	if _, err := s.ExploreContext(context.Background()); !errors.Is(err, ErrSessionBusy) {
		t.Errorf("concurrent Explore: got %v, want ErrSessionBusy", err)
	}
	if _, err := s.Select(0); !errors.Is(err, ErrSessionBusy) {
		t.Errorf("Select during explore: got %v, want ErrSessionBusy", err)
	}
	if err := s.AdoptResult(&Result{Initial: Alternative{Graph: s.Current()}}); !errors.Is(err, ErrSessionBusy) {
		t.Errorf("AdoptResult during explore: got %v, want ErrSessionBusy", err)
	}
	// Accessors stay responsive while the run is in flight.
	if s.Current() == nil {
		t.Error("Current nil during explore")
	}
	close(release)
	wg.Wait()

	if s.LastResult() == nil {
		t.Fatal("no result adopted after explore")
	}
	if _, err := s.Select(0); err != nil {
		t.Errorf("Select after explore: %v", err)
	}
}

func TestSessionAdoptResult(t *testing.T) {
	s := newTestSession(t)
	res, err := s.Planner().Plan(s.Current(), s.Binding())
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a cache hit on a second session over the same flow.
	s2 := newTestSession(t)
	if err := s2.AdoptResult(res); err != nil {
		t.Fatalf("adopting matching result: %v", err)
	}
	alt, err := s2.Select(0)
	if err != nil {
		t.Fatalf("select after adopt: %v", err)
	}
	if s2.Current() != alt.Graph {
		t.Error("select did not advance the session")
	}

	// The session has moved on: the old result no longer matches.
	if err := s2.AdoptResult(res); err == nil {
		t.Error("adopting a result for a different flow must fail")
	}
	if err := s2.AdoptResult(nil); err == nil {
		t.Error("adopting nil must fail")
	}
}

// Hammer a session from many goroutines: go test -race verifies the
// iteration state is never corrupted, and the busy guard means every call
// either succeeds or reports ErrSessionBusy.
func TestSessionConcurrentUse(t *testing.T) {
	s := newTestSession(t)
	var explored, busy atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				_, err := s.Explore()
				switch {
				case err == nil:
					explored.Add(1)
					_, serr := s.Select(0)
					if serr != nil && !errors.Is(serr, ErrSessionBusy) &&
						serr.Error() != "core: Select before Explore" {
						// Another goroutine may have consumed the result first;
						// anything else is a real failure.
						t.Errorf("select: %v", serr)
					}
				case errors.Is(err, ErrSessionBusy):
					busy.Add(1)
				default:
					t.Errorf("explore: %v", err)
				}
				s.Current()
				s.History()
				s.LastResult()
			}
		}()
	}
	wg.Wait()
	if explored.Load() == 0 {
		t.Error("no exploration ever ran")
	}
	if int(explored.Load()) < len(s.History()) {
		t.Errorf("history (%d) longer than successful explorations (%d)",
			len(s.History()), explored.Load())
	}
}
