// Package pdi imports Pentaho Data Integration (Kettle) transformation
// files (.ktr) as ETL flow graphs. POIESIS "currently supports the loading
// of xLM and PDI" (§3); this importer parses the real .ktr element layout
// (<transformation>, <step>, <order><hop>) and maps PDI step types onto the
// operation taxonomy of internal/etl.
package pdi

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"poiesis/internal/etl"
)

type ktrDoc struct {
	XMLName xml.Name  `xml:"transformation"`
	Info    ktrInfo   `xml:"info"`
	Steps   []ktrStep `xml:"step"`
	Order   ktrOrder  `xml:"order"`
}

type ktrInfo struct {
	Name string `xml:"name"`
}

type ktrStep struct {
	Name   string     `xml:"name"`
	Type   string     `xml:"type"`
	Copies int        `xml:"copies"`
	Fields []ktrField `xml:"fields>field"`
}

type ktrField struct {
	Name string `xml:"name"`
	Type string `xml:"type"`
}

type ktrOrder struct {
	Hops []ktrHop `xml:"hop"`
}

type ktrHop struct {
	From    string `xml:"from"`
	To      string `xml:"to"`
	Enabled string `xml:"enabled"`
}

// stepKind maps PDI step types (case-insensitive) to the taxonomy. The list
// covers the steps that appear in typical warehouse transformations; unknown
// steps map to OpDerive (a generic row transformation) so imports degrade
// gracefully rather than failing.
func stepKind(t string) etl.OpKind {
	switch strings.ToLower(t) {
	case "tableinput", "csvinput", "textfileinput", "excelinput", "xbaseinput":
		return etl.OpExtract
	case "tableoutput", "insertupdate", "update", "textfileoutput", "deleteoutput", "synchronizeaftermerge":
		return etl.OpLoad
	case "filterrows", "javafilter":
		return etl.OpFilter
	case "calculator", "scriptvaluemod", "formula", "setvaluefield":
		return etl.OpDerive
	case "selectvalues":
		return etl.OpProject
	case "sortrows":
		return etl.OpSort
	case "unique", "uniquerows", "uniquerowsbyhashset":
		return etl.OpDedup
	case "mergejoin", "joinrows":
		return etl.OpJoin
	case "streamlookup", "dblookup", "dimensionlookup":
		return etl.OpLookup
	case "groupby", "memorygroupby":
		return etl.OpAggregate
	case "append", "sortedmerge", "mergerows":
		return etl.OpMerge
	case "switchcase", "filterrowsswitch":
		return etl.OpSplit
	case "partitioner", "rowdistribution":
		return etl.OpPartition
	case "valuemapper", "stringoperations", "replacestring", "stringcut":
		return etl.OpConvert
	case "addsequence":
		return etl.OpSurrogate
	case "blockingstep":
		return etl.OpCheckpoint
	case "dummy":
		return etl.OpNoop
	default:
		return etl.OpDerive
	}
}

// fieldType maps PDI field types to attribute types.
func fieldType(t string) etl.AttrType {
	switch strings.ToLower(t) {
	case "integer":
		return etl.TypeInt
	case "number", "bignumber":
		return etl.TypeFloat
	case "string":
		return etl.TypeString
	case "date", "timestamp":
		return etl.TypeDate
	case "boolean":
		return etl.TypeBool
	default:
		return etl.ParseAttrType(t)
	}
}

// Decode parses a .ktr document into a validated flow. Step names become
// node IDs (PDI step names are unique per transformation); disabled hops are
// skipped.
func Decode(b []byte) (*etl.Graph, error) {
	var doc ktrDoc
	if err := xml.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("pdi: parsing: %w", err)
	}
	name := doc.Info.Name
	if name == "" {
		name = "pdi_transformation"
	}
	g := etl.New(name)
	for _, s := range doc.Steps {
		if s.Name == "" {
			return nil, fmt.Errorf("pdi: step without name (type %q)", s.Type)
		}
		kind := stepKind(s.Type)
		var schema etl.Schema
		for _, f := range s.Fields {
			schema.Attrs = append(schema.Attrs, etl.Attribute{
				Name: f.Name,
				Type: fieldType(f.Type),
			})
		}
		n := etl.NewNode(etl.NodeID(idFor(s.Name)), s.Name, kind, schema)
		n.SetParam("pdi.type", s.Type)
		if s.Copies > 1 {
			n.Parallelism = s.Copies
		}
		if err := g.AddNode(n); err != nil {
			return nil, fmt.Errorf("pdi: %w", err)
		}
	}
	for _, h := range doc.Order.Hops {
		if strings.EqualFold(h.Enabled, "n") {
			continue
		}
		if err := g.AddEdge(etl.NodeID(idFor(h.From)), etl.NodeID(idFor(h.To))); err != nil {
			return nil, fmt.Errorf("pdi: hop %q -> %q: %w", h.From, h.To, err)
		}
	}
	// Imported flows often omit schemata; propagate the upstream schema onto
	// schema-less pass-through steps so patterns have something to inspect.
	propagateSchemas(g)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("pdi: invalid transformation: %w", err)
	}
	return g, nil
}

// Read decodes a transformation from r.
func Read(r io.Reader) (*etl.Graph, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("pdi: reading: %w", err)
	}
	return Decode(b)
}

// idFor sanitises a PDI step name into a node ID: spaces become underscores
// and the name is lower-cased, matching the ID style of builder flows.
func idFor(name string) string {
	return strings.ToLower(strings.ReplaceAll(strings.TrimSpace(name), " ", "_"))
}

// propagateSchemas fills empty output schemata from predecessors in
// topological order (loads keep an empty schema: they declare no output).
func propagateSchemas(g *etl.Graph) {
	order, err := g.TopoSort()
	if err != nil {
		return
	}
	for _, id := range order {
		n := g.Node(id)
		if !n.Out.IsEmpty() || n.Kind.IsSink() {
			continue
		}
		n.Out = g.InputSchema(id)
	}
}

// Encode writes a flow back out as a minimal .ktr document. The mapping is
// lossy (cost models and quality metadata have no PDI representation) but
// round-trips structure and schemata, which lets users push a selected
// redesign back into PDI.
func Encode(g *etl.Graph) ([]byte, error) {
	doc := ktrDoc{Info: ktrInfo{Name: g.Name}}
	for _, n := range g.Nodes() {
		s := ktrStep{Name: n.Name, Type: pdiType(n)}
		if n.Parallelism > 1 {
			s.Copies = n.Parallelism
		}
		for _, a := range n.Out.Attrs {
			s.Fields = append(s.Fields, ktrField{Name: a.Name, Type: pdiFieldType(a.Type)})
		}
		doc.Steps = append(doc.Steps, s)
	}
	for _, e := range g.Edges() {
		doc.Order.Hops = append(doc.Order.Hops, ktrHop{
			From:    g.Node(e.From).Name,
			To:      g.Node(e.To).Name,
			Enabled: "Y",
		})
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("pdi: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

// pdiType picks a representative PDI step type for an operation kind,
// honouring the original type when the node was imported from PDI.
func pdiType(n *etl.Node) string {
	if t := n.Param("pdi.type"); t != "" {
		return t
	}
	switch n.Kind {
	case etl.OpExtract, etl.OpRecovery:
		return "TableInput"
	case etl.OpLoad:
		return "TableOutput"
	case etl.OpFilter, etl.OpFilterNull:
		return "FilterRows"
	case etl.OpDerive, etl.OpCrosscheck:
		return "Calculator"
	case etl.OpProject:
		return "SelectValues"
	case etl.OpConvert, etl.OpEncrypt:
		return "ValueMapper"
	case etl.OpSurrogate:
		return "AddSequence"
	case etl.OpJoin:
		return "MergeJoin"
	case etl.OpLookup:
		return "StreamLookup"
	case etl.OpAggregate:
		return "GroupBy"
	case etl.OpSort:
		return "SortRows"
	case etl.OpDedup:
		return "UniqueRows"
	case etl.OpUnion, etl.OpMerge:
		return "Append"
	case etl.OpSplit:
		return "SwitchCase"
	case etl.OpPartition:
		return "Partitioner"
	case etl.OpCheckpoint:
		return "BlockingStep"
	default:
		return "Dummy"
	}
}

func pdiFieldType(t etl.AttrType) string {
	switch t {
	case etl.TypeInt:
		return "Integer"
	case etl.TypeFloat:
		return "Number"
	case etl.TypeString:
		return "String"
	case etl.TypeDate:
		return "Date"
	case etl.TypeBool:
		return "Boolean"
	default:
		return "String"
	}
}
