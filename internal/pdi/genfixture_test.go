package pdi

import (
	"flag"
	"os"
	"testing"

	"poiesis/internal/tpch"
)

var regen = flag.Bool("regen", false, "regenerate golden fixtures from the exporters")

// TestRegenGolden rewrites testdata/pricing.ktr from the PDI exporter when
// run with -regen; otherwise it verifies the committed fixture is exactly
// what the exporter produces today, so encoder drift is caught explicitly
// rather than only through decode failures.
func TestRegenGolden(t *testing.T) {
	want, err := Encode(tpch.PricingSummaryETL())
	if err != nil {
		t.Fatal(err)
	}
	if *regen {
		if err := os.WriteFile("testdata/pricing.ktr", want, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	got, err := os.ReadFile("testdata/pricing.ktr")
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/pdi -run TestRegenGolden -regen` to create it)", err)
	}
	if string(got) != string(want) {
		t.Error("testdata/pricing.ktr no longer matches the exporter output; rerun with -regen if the format change is intentional")
	}
}
