package pdi

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"poiesis/internal/etl"
	"poiesis/internal/tpcds"
)

// sampleKTR is a hand-written PDI transformation resembling what Spoon
// exports: table input -> filter -> calculator -> sort -> group by -> output,
// with a lookup feeding the calculator.
const sampleKTR = `<?xml version="1.0" encoding="UTF-8"?>
<transformation>
  <info><name>purchases_staging</name></info>
  <step>
    <name>Purchases Input</name>
    <type>TableInput</type>
    <fields>
      <field><name>purchase_id</name><type>Integer</type></field>
      <field><name>amount</name><type>Number</type></field>
      <field><name>note</name><type>String</type></field>
      <field><name>sold_at</name><type>Date</type></field>
      <field><name>valid</name><type>Boolean</type></field>
    </fields>
  </step>
  <step>
    <name>Items Input</name>
    <type>CsvInput</type>
    <fields>
      <field><name>purchase_id</name><type>Integer</type></field>
      <field><name>category</name><type>String</type></field>
    </fields>
  </step>
  <step><name>Filter Valid</name><type>FilterRows</type></step>
  <step><name>Lookup Item</name><type>StreamLookup</type></step>
  <step><name>Compute Value</name><type>Calculator</type><copies>4</copies></step>
  <step><name>Sort Output</name><type>SortRows</type></step>
  <step><name>Group Totals</name><type>GroupBy</type></step>
  <step><name>DW Output</name><type>TableOutput</type></step>
  <order>
    <hop><from>Purchases Input</from><to>Filter Valid</to><enabled>Y</enabled></hop>
    <hop><from>Filter Valid</from><to>Lookup Item</to><enabled>Y</enabled></hop>
    <hop><from>Items Input</from><to>Lookup Item</to><enabled>Y</enabled></hop>
    <hop><from>Lookup Item</from><to>Compute Value</to><enabled>Y</enabled></hop>
    <hop><from>Compute Value</from><to>Sort Output</to><enabled>Y</enabled></hop>
    <hop><from>Sort Output</from><to>Group Totals</to><enabled>Y</enabled></hop>
    <hop><from>Group Totals</from><to>DW Output</to><enabled>Y</enabled></hop>
    <hop><from>Purchases Input</from><to>DW Output</to><enabled>N</enabled></hop>
  </order>
</transformation>`

func TestDecodeSample(t *testing.T) {
	g, err := Decode([]byte(sampleKTR))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "purchases_staging" {
		t.Errorf("name = %q", g.Name)
	}
	if g.Len() != 8 {
		t.Errorf("nodes = %d", g.Len())
	}
	// Disabled hop skipped: 7 enabled hops.
	if g.EdgeCount() != 7 {
		t.Errorf("edges = %d", g.EdgeCount())
	}
	checks := map[string]etl.OpKind{
		"purchases_input": etl.OpExtract,
		"items_input":     etl.OpExtract,
		"filter_valid":    etl.OpFilter,
		"lookup_item":     etl.OpLookup,
		"compute_value":   etl.OpDerive,
		"sort_output":     etl.OpSort,
		"group_totals":    etl.OpAggregate,
		"dw_output":       etl.OpLoad,
	}
	for id, kind := range checks {
		n := g.Node(etl.NodeID(id))
		if n == nil {
			t.Fatalf("node %s missing", id)
		}
		if n.Kind != kind {
			t.Errorf("%s kind = %s, want %s", id, n.Kind, kind)
		}
	}
	// Copies map to parallelism.
	if g.Node("compute_value").Parallelism != 4 {
		t.Errorf("parallelism = %d", g.Node("compute_value").Parallelism)
	}
	// Original PDI type preserved as a parameter.
	if g.Node("purchases_input").Param("pdi.type") != "TableInput" {
		t.Error("pdi.type parameter lost")
	}
	// Field types mapped.
	a, _ := g.Node("purchases_input").Out.Attr("amount")
	if a.Type != etl.TypeFloat {
		t.Errorf("amount type = %s", a.Type)
	}
	d, _ := g.Node("purchases_input").Out.Attr("sold_at")
	if d.Type != etl.TypeDate {
		t.Errorf("sold_at type = %s", d.Type)
	}
}

func TestSchemaPropagation(t *testing.T) {
	g, err := Decode([]byte(sampleKTR))
	if err != nil {
		t.Fatal(err)
	}
	// Filter declares no fields in the .ktr; it must inherit the input's.
	flt := g.Node("filter_valid")
	if !flt.Out.Has("purchase_id") || !flt.Out.Has("amount") {
		t.Errorf("filter schema not propagated: %v", flt.Out)
	}
	// Lookup sees the union of both inputs.
	lkp := g.Node("lookup_item")
	if !lkp.Out.Has("category") {
		t.Errorf("lookup schema not unioned: %v", lkp.Out)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("junk")); err == nil {
		t.Error("junk should fail")
	}
	noName := `<transformation><step><type>Dummy</type></step></transformation>`
	if _, err := Decode([]byte(noName)); err == nil {
		t.Error("step without name should fail")
	}
	badHop := `<transformation><info><name>t</name></info>
	  <step><name>a</name><type>TableInput</type></step>
	  <order><hop><from>a</from><to>zz</to><enabled>Y</enabled></hop></order>
	</transformation>`
	if _, err := Decode([]byte(badHop)); err == nil {
		t.Error("hop to unknown step should fail")
	}
	invalid := `<transformation><info><name>t</name></info>
	  <step><name>a</name><type>FilterRows</type></step>
	</transformation>`
	if _, err := Decode([]byte(invalid)); err == nil {
		t.Error("filter-only flow should fail validation")
	}
}

func TestUnknownStepTypeDegrades(t *testing.T) {
	doc := `<transformation><info><name>t</name></info>
	  <step><name>in</name><type>TableInput</type>
	    <fields><field><name>x</name><type>Integer</type></field></fields></step>
	  <step><name>weird</name><type>SomeMarketplacePlugin</type></step>
	  <step><name>out</name><type>TableOutput</type></step>
	  <order>
	    <hop><from>in</from><to>weird</to><enabled>Y</enabled></hop>
	    <hop><from>weird</from><to>out</to><enabled>Y</enabled></hop>
	  </order>
	</transformation>`
	g, err := Decode([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if g.Node("weird").Kind != etl.OpDerive {
		t.Errorf("unknown step mapped to %s", g.Node("weird").Kind)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := tpcds.PurchasesFlow()
	b, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte("<transformation>")) {
		t.Error("not a ktr document")
	}
	g2, err := Decode(b)
	if err != nil {
		t.Fatalf("re-decode: %v\n%s", err, b)
	}
	if g2.Len() != g.Len() || g2.EdgeCount() != g.EdgeCount() {
		t.Errorf("structure changed: %d/%d vs %d/%d",
			g2.Len(), g2.EdgeCount(), g.Len(), g.EdgeCount())
	}
	// Operation kinds survive the lossy mapping.
	kinds := func(g *etl.Graph) map[etl.OpKind]int {
		m := map[etl.OpKind]int{}
		for _, n := range g.Nodes() {
			m[n.Kind]++
		}
		return m
	}
	k1, k2 := kinds(g), kinds(g2)
	for k, c := range k1 {
		if k2[k] != c {
			t.Errorf("kind %s count %d -> %d", k, c, k2[k])
		}
	}
}

func TestPDITypeCoversAllKinds(t *testing.T) {
	kinds := []etl.OpKind{
		etl.OpExtract, etl.OpLoad, etl.OpFilter, etl.OpFilterNull, etl.OpDerive,
		etl.OpProject, etl.OpConvert, etl.OpSurrogate, etl.OpJoin, etl.OpLookup,
		etl.OpAggregate, etl.OpSort, etl.OpDedup, etl.OpUnion, etl.OpSplit,
		etl.OpPartition, etl.OpMerge, etl.OpCheckpoint, etl.OpRecovery,
		etl.OpCrosscheck, etl.OpEncrypt, etl.OpNoop,
	}
	for _, k := range kinds {
		n := etl.NewNode("n", "n", k, etl.Schema{})
		typ := pdiType(n)
		if typ == "" {
			t.Errorf("no PDI type for %v", k)
			continue
		}
		// The chosen type must be a step our importer understands, so
		// exported redesigns survive a re-import (possibly as a degraded
		// kind, never as a parse failure).
		back := stepKind(typ)
		if back == etl.OpUnknown {
			t.Errorf("%v -> %q -> unknown", k, typ)
		}
	}
	// Imported type is honoured on re-export.
	n := etl.NewNode("n", "n", etl.OpDerive, etl.Schema{})
	n.SetParam("pdi.type", "ScriptValueMod")
	if got := pdiType(n); got != "ScriptValueMod" {
		t.Errorf("original type not honoured: %q", got)
	}
}

func TestPDIFieldTypesRoundTrip(t *testing.T) {
	types := []etl.AttrType{
		etl.TypeInt, etl.TypeFloat, etl.TypeString, etl.TypeDate, etl.TypeBool,
	}
	for _, typ := range types {
		if got := fieldType(pdiFieldType(typ)); got != typ {
			t.Errorf("round trip %v -> %q -> %v", typ, pdiFieldType(typ), got)
		}
	}
	if pdiFieldType(etl.TypeUnknown) != "String" {
		t.Error("unknown type should default to String")
	}
	if fieldType("BigNumber") != etl.TypeFloat {
		t.Error("BigNumber should map to float")
	}
}

func TestEncodeParallelCopies(t *testing.T) {
	g := tpcds.PurchasesFlow()
	g.Node("derive_values").Parallelism = 4
	b, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range g2.Nodes() {
		if n.Parallelism == 4 {
			found = true
		}
	}
	if !found {
		t.Error("copies/parallelism lost in round trip")
	}
}

func TestGoldenFixture(t *testing.T) {
	b, err := os.ReadFile("testdata/pricing.ktr")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "tpch_pricing_summary" {
		t.Errorf("name = %q", g.Name)
	}
	if g.Len() != 9 || g.EdgeCount() != 8 {
		t.Errorf("structure = %d/%d", g.Len(), g.EdgeCount())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReadWrapper(t *testing.T) {
	g, err := Read(strings.NewReader(sampleKTR))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 8 {
		t.Errorf("nodes = %d", g.Len())
	}
}
