// Package workloads is the single registry of built-in demo flows, shared
// by the CLI FLOW-argument resolver and the HTTP service's flow uploads so
// the two surfaces can never advertise different sets.
package workloads

import (
	"sort"

	"poiesis/internal/etl"
	"poiesis/internal/tpcds"
	"poiesis/internal/tpch"
)

var flows = map[string]func() *etl.Graph{
	"tpcds-purchases": tpcds.PurchasesFlow,
	"tpcds-sales":     tpcds.SalesETL,
	"tpcds-inventory": tpcds.InventoryETL,
	"tpch-revenue":    tpch.RevenueETL,
	"tpch-pricing":    tpch.PricingSummaryETL,
}

// Get builds the named built-in flow; ok is false for unknown names.
func Get(name string) (*etl.Graph, bool) {
	mk, ok := flows[name]
	if !ok {
		return nil, false
	}
	return mk(), true
}

// Names lists the built-in flow names, sorted.
func Names() []string {
	names := make([]string, 0, len(flows))
	for name := range flows {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
