package tpch

import "poiesis/internal/etl"

// PricingSummaryETL builds a TPC-H Q1-style pricing summary pipeline:
// lineitem filtered on the ship-date horizon, converted, heavy per-row
// charge derivation, sorted and aggregated by return flag, loaded into a
// summary mart plus a raw archive. It is the single-source, blocking-heavy
// counterpart of RevenueETL.
func PricingSummaryETL() *etl.Graph {
	li := LineitemSchema()
	derived := li.
		With(etl.Attribute{Name: "disc_price", Type: etl.TypeFloat}).
		With(etl.Attribute{Name: "charge", Type: etl.TypeFloat})

	g := etl.New("tpch_pricing_summary")
	g.MustAddNode(etl.NewNode("src_lineitem", "lineitem", etl.OpExtract, li))
	g.MustAddNode(etl.NewNode("conv_li", "convert_lineitem", etl.OpConvert, li))
	flt := etl.NewNode("flt_horizon", "filter_shipdate_horizon", etl.OpFilter, li)
	flt.SetParam("predicate", "l_shipdate <= date '1998-12-01' - interval '90' day")
	flt.Cost.Selectivity = 0.95
	g.MustAddNode(flt)
	drv := etl.NewNode("drv_charge", "derive_disc_price_charge", etl.OpDerive, derived)
	drv.Cost.PerTuple = 0.03
	drv.Cost.FailureRate = 0.01
	g.MustAddNode(drv)
	srt := etl.NewNode("srt_flag", "sort_by_returnflag", etl.OpSort, derived)
	g.MustAddNode(srt)
	agg := etl.NewNode("agg_flag", "aggregate_by_returnflag", etl.OpAggregate, derived)
	agg.SetParam("group_by", "l_returnflag")
	g.MustAddNode(agg)
	g.MustAddNode(etl.NewNode("split_out", "split_outputs", etl.OpSplit, derived))
	g.MustAddNode(etl.NewNode("ld_summary", "DW_pricing_summary", etl.OpLoad, etl.Schema{}))
	g.MustAddNode(etl.NewNode("ld_archive", "DW_lineitem_archive", etl.OpLoad, etl.Schema{}))

	edges := [][2]etl.NodeID{
		{"src_lineitem", "conv_li"},
		{"conv_li", "flt_horizon"},
		{"flt_horizon", "drv_charge"},
		{"drv_charge", "split_out"},
		{"split_out", "srt_flag"},
		{"srt_flag", "agg_flag"},
		{"agg_flag", "ld_summary"},
		{"split_out", "ld_archive"},
	}
	for _, e := range edges {
		g.MustAddEdge(e[0], e[1])
	}
	return g
}
