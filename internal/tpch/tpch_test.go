package tpch

import (
	"testing"

	"poiesis/internal/sim"
)

func TestRevenueETLValid(t *testing.T) {
	g := RevenueETL()
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid flow: %v\n%s", err, g)
	}
	if g.Len() < 15 {
		t.Errorf("revenue ETL has only %d operators", g.Len())
	}
	if len(g.Sources()) != 4 {
		t.Errorf("sources = %d", len(g.Sources()))
	}
	if len(g.Sinks()) != 3 {
		t.Errorf("sinks = %d", len(g.Sinks()))
	}
	// The join has two inputs.
	if g.InDegree("join_ord") != 2 {
		t.Errorf("join in-degree = %d", g.InDegree("join_ord"))
	}
}

func TestRevenueETLExecutes(t *testing.T) {
	g := RevenueETL()
	e := sim.NewEngine(sim.DefaultConfig())
	p, err := e.Execute(g, Binding(g, 2000, 5))
	if err != nil {
		t.Fatal(err)
	}
	if p.RowsLoaded == 0 {
		t.Error("no rows loaded")
	}
	// The recent-shipment filter and inner join must reduce cardinality
	// below the lineitem scale.
	if p.RowsInOf("drv_revenue") >= 2000 {
		t.Errorf("derive input = %d, expected filtered+joined subset", p.RowsInOf("drv_revenue"))
	}
	// Aggregates produce small outputs.
	if p.RowsOutOf("agg_segment") > 25 {
		t.Errorf("segment aggregate rows = %d", p.RowsOutOf("agg_segment"))
	}
}

func TestPricingSummaryETLValid(t *testing.T) {
	g := PricingSummaryETL()
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid flow: %v\n%s", err, g)
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 2 {
		t.Errorf("topology: %d sources, %d sinks", len(g.Sources()), len(g.Sinks()))
	}
}

func TestPricingSummaryExecutes(t *testing.T) {
	g := PricingSummaryETL()
	e := sim.NewEngine(sim.DefaultConfig())
	p, err := e.Execute(g, Binding(g, 2000, 4))
	if err != nil {
		t.Fatal(err)
	}
	if p.RowsLoaded == 0 {
		t.Error("no rows loaded")
	}
	// The Q1 aggregate groups by return flag: the 20-word vocabulary plus a
	// few corrupted (injected-error) variants.
	if p.RowsOutOf("agg_flag") > 45 {
		t.Errorf("aggregate rows = %d", p.RowsOutOf("agg_flag"))
	}
	// The blocking sort materialises the filtered stream.
	if p.MemRowsPeak == 0 {
		t.Error("sort should register memory peak")
	}
}

func TestBindingProportions(t *testing.T) {
	g := RevenueETL()
	b := Binding(g, 8000, 1)
	if b["src_orders"].Rows != 2000 {
		t.Errorf("orders rows = %d", b["src_orders"].Rows)
	}
	if b["src_customer"].Rows != 800 {
		t.Errorf("customer rows = %d", b["src_customer"].Rows)
	}
	if b["src_part"].Rows != 1600 {
		t.Errorf("part rows = %d", b["src_part"].Rows)
	}
	// Degenerate scale still yields at least one row.
	b2 := Binding(g, 3, 1)
	for id, spec := range b2 {
		if spec.Rows < 1 {
			t.Errorf("%s rows = %d", id, spec.Rows)
		}
	}
}
