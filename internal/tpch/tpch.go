// Package tpch builds the TPC-H-based ETL process of the POIESIS demo: an
// order-revenue pipeline over lineitem/orders/customer/part sources with
// tens of operators, plus synthetic source bindings replacing dbgen.
package tpch

import (
	"poiesis/internal/data"
	"poiesis/internal/etl"
	"poiesis/internal/sim"
)

// LineitemSchema is the TPC-H lineitem subset the flows touch.
func LineitemSchema() etl.Schema {
	return etl.NewSchema(
		etl.Attribute{Name: "l_orderkey", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "l_linenumber", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "l_partkey", Type: etl.TypeInt},
		etl.Attribute{Name: "l_quantity", Type: etl.TypeInt},
		etl.Attribute{Name: "l_extendedprice", Type: etl.TypeFloat},
		etl.Attribute{Name: "l_discount", Type: etl.TypeFloat, Nullable: true},
		etl.Attribute{Name: "l_tax", Type: etl.TypeFloat, Nullable: true},
		etl.Attribute{Name: "l_shipdate", Type: etl.TypeDate},
		etl.Attribute{Name: "l_returnflag", Type: etl.TypeString},
	)
}

func ordersSchema() etl.Schema {
	return etl.NewSchema(
		etl.Attribute{Name: "l_orderkey", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "o_custkey", Type: etl.TypeInt},
		etl.Attribute{Name: "o_orderdate", Type: etl.TypeDate},
		etl.Attribute{Name: "o_orderpriority", Type: etl.TypeString},
	)
}

func customerSchema() etl.Schema {
	return etl.NewSchema(
		etl.Attribute{Name: "o_custkey", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "c_mktsegment", Type: etl.TypeString},
		etl.Attribute{Name: "c_nationkey", Type: etl.TypeInt},
		etl.Attribute{Name: "c_acctbal", Type: etl.TypeFloat, Nullable: true},
	)
}

func partSchema() etl.Schema {
	return etl.NewSchema(
		etl.Attribute{Name: "l_partkey", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "p_type", Type: etl.TypeString},
		etl.Attribute{Name: "p_retailprice", Type: etl.TypeFloat},
	)
}

// RevenueETL builds the demo TPC-H process: lineitem joined with orders,
// enriched with customer and part reference data, revenue derived, cleaned,
// aggregated by market segment and priority, loaded into a fact table plus
// two marts.
func RevenueETL() *etl.Graph {
	li := LineitemSchema()
	joined := li.Union(ordersSchema())
	enrCust := joined.Union(customerSchema())
	enrPart := enrCust.Union(partSchema())
	derived := enrPart.
		With(etl.Attribute{Name: "revenue", Type: etl.TypeFloat}).
		With(etl.Attribute{Name: "charge", Type: etl.TypeFloat})

	g := etl.New("tpch_revenue")
	g.MustAddNode(etl.NewNode("src_lineitem", "lineitem", etl.OpExtract, li))
	g.MustAddNode(etl.NewNode("src_orders", "orders", etl.OpExtract, ordersSchema()))
	g.MustAddNode(etl.NewNode("src_customer", "customer", etl.OpExtract, customerSchema()))
	g.MustAddNode(etl.NewNode("src_part", "part", etl.OpExtract, partSchema()))

	// Staging: type conversion and recent-shipment filter near the source.
	g.MustAddNode(etl.NewNode("conv_li", "convert_lineitem", etl.OpConvert, li))
	fltDate := etl.NewNode("flt_recent", "filter_recent_shipments", etl.OpFilter, li)
	fltDate.SetParam("predicate", "l_shipdate >= date '1995-01-01'")
	fltDate.Cost.Selectivity = 0.7
	g.MustAddNode(fltDate)
	g.MustAddNode(etl.NewNode("srt_orders", "sort_orders", etl.OpSort, ordersSchema()))

	// Join lineitem with orders; enrich with customer and part.
	jn := etl.NewNode("join_ord", "join_lineitem_orders", etl.OpJoin, joined)
	jn.Cost.FailureRate = 0.01
	g.MustAddNode(jn)
	g.MustAddNode(etl.NewNode("lkp_cust", "lookup_customer", etl.OpLookup, enrCust))
	g.MustAddNode(etl.NewNode("lkp_part", "lookup_part", etl.OpLookup, enrPart))

	// Heavy derivation: revenue = price*(1-discount), charge = revenue*(1+tax).
	drv := etl.NewNode("drv_revenue", "derive_revenue", etl.OpDerive, derived)
	drv.Cost.PerTuple = 0.025
	drv.Cost.FailureRate = 0.012
	g.MustAddNode(drv)

	// Outputs: full fact, per-segment aggregate, per-priority aggregate.
	g.MustAddNode(etl.NewNode("split_marts", "split_marts", etl.OpSplit, derived))
	g.MustAddNode(etl.NewNode("srt_fact", "sort_fact", etl.OpSort, derived))
	aggSeg := etl.NewNode("agg_segment", "aggregate_by_segment", etl.OpAggregate, derived)
	aggSeg.SetParam("group_by", "c_mktsegment")
	g.MustAddNode(aggSeg)
	aggPri := etl.NewNode("agg_priority", "aggregate_by_priority", etl.OpAggregate, derived)
	aggPri.SetParam("group_by", "o_orderpriority")
	g.MustAddNode(aggPri)
	g.MustAddNode(etl.NewNode("ld_fact", "DW_revenue_fact", etl.OpLoad, etl.Schema{}))
	g.MustAddNode(etl.NewNode("ld_seg", "DW_revenue_by_segment", etl.OpLoad, etl.Schema{}))
	g.MustAddNode(etl.NewNode("ld_pri", "DW_revenue_by_priority", etl.OpLoad, etl.Schema{}))

	edges := [][2]etl.NodeID{
		{"src_lineitem", "conv_li"},
		{"conv_li", "flt_recent"},
		{"src_orders", "srt_orders"},
		{"flt_recent", "join_ord"},
		{"srt_orders", "join_ord"},
		{"join_ord", "lkp_cust"},
		{"src_customer", "lkp_cust"},
		{"lkp_cust", "lkp_part"},
		{"src_part", "lkp_part"},
		{"lkp_part", "drv_revenue"},
		{"drv_revenue", "split_marts"},
		{"split_marts", "srt_fact"},
		{"split_marts", "agg_segment"},
		{"split_marts", "agg_priority"},
		{"srt_fact", "ld_fact"},
		{"agg_segment", "ld_seg"},
		{"agg_priority", "ld_pri"},
	}
	for _, e := range edges {
		g.MustAddEdge(e[0], e[1])
	}
	return g
}

// Binding returns synthetic bindings sized per TPC-H proportions: orders at
// a quarter of lineitem, customer a tenth, part a fifth.
func Binding(g *etl.Graph, scale int, seed uint64) sim.Binding {
	if scale <= 0 {
		scale = 6000
	}
	b := sim.Binding{}
	for _, src := range g.Sources() {
		spec := data.SourceSpec{
			Name:           src.Name,
			Schema:         src.Out,
			Rows:           scale,
			UpdatesPerHour: 1,
			Seed:           seed ^ hash(src.ID),
			Defects: data.Defects{
				NullRate:  0.05,
				DupRate:   0.02,
				ErrorRate: 0.03,
			},
		}
		switch src.ID {
		case "src_orders":
			spec.Rows = scale / 4
			spec.Defects = data.Defects{NullRate: 0.02, DupRate: 0.01}
		case "src_customer":
			spec.Rows = scale / 10
			spec.Defects = data.Defects{NullRate: 0.03}
		case "src_part":
			spec.Rows = scale / 5
			spec.Defects = data.Defects{NullRate: 0.01}
		}
		if spec.Rows < 1 {
			spec.Rows = 1
		}
		b[src.ID] = spec
	}
	return b
}

func hash(id etl.NodeID) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}
