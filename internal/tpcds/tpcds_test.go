package tpcds

import (
	"testing"

	"poiesis/internal/etl"
	"poiesis/internal/sim"
)

func TestPurchasesFlowValid(t *testing.T) {
	g := PurchasesFlow()
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid flow: %v\n%s", err, g)
	}
	// Fig. 2 topology: one source, two loads, a split with two branches.
	if len(g.Sources()) != 1 {
		t.Errorf("sources = %d", len(g.Sources()))
	}
	if len(g.Sinks()) != 2 {
		t.Errorf("sinks = %d", len(g.Sinks()))
	}
	if g.OutDegree("split_req") != 2 {
		t.Errorf("split fan-out = %d", g.OutDegree("split_req"))
	}
	// The predicate of Fig. 2 is configured.
	if p := g.Node("flt_current").Param("predicate"); p == "" {
		t.Error("filter predicate missing")
	}
	// Derive is the dominant task.
	max := 0.0
	var maxID etl.NodeID
	for _, n := range g.Nodes() {
		if n.Cost.PerTuple > max {
			max, maxID = n.Cost.PerTuple, n.ID
		}
	}
	if maxID != "derive_values" {
		t.Errorf("dominant op = %s", maxID)
	}
}

func TestSalesETLValid(t *testing.T) {
	g := SalesETL()
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid flow: %v\n%s", err, g)
	}
	// "tens of operators, extracting data from multiple sources"
	if g.Len() < 20 {
		t.Errorf("sales ETL has only %d operators", g.Len())
	}
	if len(g.Sources()) < 3 {
		t.Errorf("sales ETL has only %d sources", len(g.Sources()))
	}
	if len(g.Sinks()) != 3 {
		t.Errorf("sinks = %d", len(g.Sinks()))
	}
}

func TestInventoryETLValid(t *testing.T) {
	g := InventoryETL()
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid flow: %v\n%s", err, g)
	}
	if g.Len() < 15 {
		t.Errorf("inventory ETL has only %d operators", g.Len())
	}
	if len(g.Sources()) != 3 {
		t.Errorf("sources = %d", len(g.Sources()))
	}
	// Union node fuses the two feeds.
	if g.InDegree("union_feeds") != 2 {
		t.Errorf("union in-degree = %d", g.InDegree("union_feeds"))
	}
	if g.MergeCount() == 0 {
		t.Error("inventory flow should count merge elements")
	}
}

func TestInventoryETLExecutes(t *testing.T) {
	g := InventoryETL()
	e := sim.NewEngine(sim.DefaultConfig())
	p, err := e.Execute(g, Binding(g, 1200, 9))
	if err != nil {
		t.Fatal(err)
	}
	if p.RowsLoaded == 0 {
		t.Error("no rows loaded")
	}
	// Union doubles the feed rows before dedup trims them.
	if p.RowsInOf("dedup_snap") <= p.RowsInOf("conv_store") {
		t.Errorf("union did not combine feeds: %d vs %d",
			p.RowsInOf("dedup_snap"), p.RowsInOf("conv_store"))
	}
}

func TestBindingCoversSources(t *testing.T) {
	g := SalesETL()
	b := Binding(g, 2000, 1)
	for _, src := range g.Sources() {
		spec, ok := b[src.ID]
		if !ok {
			t.Errorf("source %s unbound", src.ID)
			continue
		}
		if spec.Rows <= 0 {
			t.Errorf("source %s rows = %d", src.ID, spec.Rows)
		}
		if !spec.Schema.Equal(src.Out) {
			t.Errorf("source %s schema mismatch", src.ID)
		}
	}
	// Reference sources are smaller than the fact source.
	if b["src_item"].Rows >= b["src_sales"].Rows {
		t.Error("item source should be smaller than sales")
	}
}

func TestFlowsExecute(t *testing.T) {
	e := sim.NewEngine(sim.DefaultConfig())
	for _, tc := range []struct {
		g     *etl.Graph
		scale int
	}{
		{PurchasesFlow(), 1500},
		{SalesETL(), 1500},
	} {
		p, err := e.Execute(tc.g, Binding(tc.g, tc.scale, 3))
		if err != nil {
			t.Fatalf("%s: %v", tc.g.Name, err)
		}
		if p.RowsLoaded == 0 {
			t.Errorf("%s loaded no rows", tc.g.Name)
		}
		if p.FirstPassMs <= 0 {
			t.Errorf("%s has no makespan", tc.g.Name)
		}
	}
}

func TestBindingDeterministic(t *testing.T) {
	g := PurchasesFlow()
	e := sim.NewEngine(sim.DefaultConfig())
	p1, err := e.Execute(g, Binding(g, 1000, 7))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Execute(g, Binding(g, 1000, 7))
	if err != nil {
		t.Fatal(err)
	}
	if p1.RowsLoaded != p2.RowsLoaded || p1.OutNullCells != p2.OutNullCells {
		t.Error("binding not deterministic")
	}
	p3, err := e.Execute(g, Binding(g, 1000, 8))
	if err != nil {
		t.Fatal(err)
	}
	if p1.OutNullCells == p3.OutNullCells && p1.OutErrRows == p3.OutErrRows && p1.RowsLoaded == p3.RowsLoaded {
		t.Error("different seeds gave identical defect profile (suspicious)")
	}
}
