// Package tpcds builds the TPC-DS-based ETL processes used in the POIESIS
// demonstration: "we will use two initial ETL processes based on the TPC-DS
// and TPC-H benchmarks. These processes contain tens of operators,
// extracting data from multiple sources." It provides the exact purchases
// sub-flow of Fig. 2 plus a larger store-sales ETL, and synthetic source
// bindings replacing the TPC-DS dbgen data (offline substitution documented
// in DESIGN.md).
package tpcds

import (
	"poiesis/internal/data"
	"poiesis/internal/etl"
	"poiesis/internal/sim"
)

// Schemas for the TPC-DS-like sources (trimmed to the attributes the flows
// touch; key flags drive dedup/crosscheck patterns).
func purchasesSchema() etl.Schema {
	return etl.NewSchema(
		etl.Attribute{Name: "purchase_id", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "purchase_line_item_id", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "item_id", Type: etl.TypeInt},
		etl.Attribute{Name: "store_id", Type: etl.TypeInt},
		etl.Attribute{Name: "quantity", Type: etl.TypeInt},
		etl.Attribute{Name: "list_price", Type: etl.TypeFloat},
		etl.Attribute{Name: "coupon_amt", Type: etl.TypeFloat, Nullable: true},
		etl.Attribute{Name: "item_record_end_date", Type: etl.TypeDate, Nullable: true},
		etl.Attribute{Name: "store_record_end_date", Type: etl.TypeDate, Nullable: true},
	)
}

// StoreSalesSchema is the fact-source schema of the larger ETL.
func StoreSalesSchema() etl.Schema {
	return etl.NewSchema(
		etl.Attribute{Name: "ss_ticket_number", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "ss_item_sk", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "ss_store_sk", Type: etl.TypeInt},
		etl.Attribute{Name: "ss_customer_sk", Type: etl.TypeInt, Nullable: true},
		etl.Attribute{Name: "ss_sold_date_sk", Type: etl.TypeInt},
		etl.Attribute{Name: "ss_quantity", Type: etl.TypeInt},
		etl.Attribute{Name: "ss_sales_price", Type: etl.TypeFloat},
		etl.Attribute{Name: "ss_ext_discount_amt", Type: etl.TypeFloat, Nullable: true},
	)
}

func itemSchema() etl.Schema {
	return etl.NewSchema(
		etl.Attribute{Name: "ss_item_sk", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "i_category", Type: etl.TypeString},
		etl.Attribute{Name: "i_current_price", Type: etl.TypeFloat},
	)
}

func storeSchema() etl.Schema {
	return etl.NewSchema(
		etl.Attribute{Name: "ss_store_sk", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "s_state", Type: etl.TypeString},
		etl.Attribute{Name: "s_market", Type: etl.TypeString, Nullable: true},
	)
}

func customerSchema() etl.Schema {
	return etl.NewSchema(
		etl.Attribute{Name: "ss_customer_sk", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "c_birth_year", Type: etl.TypeInt, Nullable: true},
		etl.Attribute{Name: "c_preferred", Type: etl.TypeBool},
	)
}

// PurchasesFlow builds the initial S_Purchases flow of Fig. 2:
//
//	EXTRACT S_Purchases
//	  -> FILTER "purchase_line_item_id = item_id AND item_record_end_date =
//	     null AND store_record_end_date = null"
//	  -> SPLIT required attributes
//	       -> DERIVE VALUES           -> S_Purchases_3
//	       -> PROJECT required attrs  -> S_Purchases_4
//
// The derive branch is the computational-intensive task that Fig. 2a
// parallelises and Fig. 2b guards with savepoints.
func PurchasesFlow() *etl.Graph {
	s := purchasesSchema()
	derived := s.With(etl.Attribute{Name: "purchase_value", Type: etl.TypeFloat}).
		With(etl.Attribute{Name: "discount_value", Type: etl.TypeFloat})
	g := etl.New("tpcds_purchases")
	g.MustAddNode(etl.NewNode("src_purchases", "S_Purchases", etl.OpExtract, s))
	flt := etl.NewNode("flt_current", "filter_current_records", etl.OpFilter, s)
	flt.SetParam("predicate",
		`purchase_line_item_id = item_id AND item_record_end_date = null AND store_record_end_date = null`)
	flt.Cost.Selectivity = 0.85
	g.MustAddNode(flt)
	g.MustAddNode(etl.NewNode("split_req", "split_required_attributes", etl.OpSplit, s))
	drv := etl.NewNode("derive_values", "derive_values", etl.OpDerive, derived)
	drv.Cost.PerTuple = 0.04 // dominant task
	drv.Cost.FailureRate = 0.02
	g.MustAddNode(drv)
	prj := etl.NewNode("project_req", "project_required", etl.OpProject,
		s.Project("purchase_id", "purchase_line_item_id", "quantity", "list_price"))
	g.MustAddNode(prj)
	g.MustAddNode(etl.NewNode("ld_p3", "S_Purchases_3", etl.OpLoad, etl.Schema{}))
	g.MustAddNode(etl.NewNode("ld_p4", "S_Purchases_4", etl.OpLoad, etl.Schema{}))
	g.MustAddEdge("src_purchases", "flt_current")
	g.MustAddEdge("flt_current", "split_req")
	g.MustAddEdge("split_req", "derive_values")
	g.MustAddEdge("split_req", "project_req")
	g.MustAddEdge("derive_values", "ld_p3")
	g.MustAddEdge("project_req", "ld_p4")
	return g
}

// SalesETL builds the larger demo process (tens of operators, multiple
// sources): store_sales enriched with item, store and customer reference
// data, cleaned, converted, aggregated along two roll-ups and loaded into a
// fact table plus two aggregate tables.
func SalesETL() *etl.Graph {
	fact := StoreSalesSchema()
	enrItem := fact.Union(itemSchema())
	enrStore := enrItem.Union(storeSchema())
	enrCust := enrStore.Union(customerSchema())
	derived := enrCust.
		With(etl.Attribute{Name: "net_paid", Type: etl.TypeFloat}).
		With(etl.Attribute{Name: "margin", Type: etl.TypeFloat})

	g := etl.New("tpcds_sales")
	// Sources.
	g.MustAddNode(etl.NewNode("src_sales", "store_sales", etl.OpExtract, fact))
	g.MustAddNode(etl.NewNode("src_item", "item", etl.OpExtract, itemSchema()))
	g.MustAddNode(etl.NewNode("src_store", "store", etl.OpExtract, storeSchema()))
	g.MustAddNode(etl.NewNode("src_cust", "customer", etl.OpExtract, customerSchema()))

	// Staging conversions next to each source.
	g.MustAddNode(etl.NewNode("conv_sales", "convert_sales_types", etl.OpConvert, fact))
	g.MustAddNode(etl.NewNode("srt_item", "sort_item", etl.OpSort, itemSchema()))
	g.MustAddNode(etl.NewNode("srt_store", "sort_store", etl.OpSort, storeSchema()))

	// Enrichment lookups.
	g.MustAddNode(etl.NewNode("lkp_item", "lookup_item", etl.OpLookup, enrItem))
	g.MustAddNode(etl.NewNode("lkp_store", "lookup_store", etl.OpLookup, enrStore))
	g.MustAddNode(etl.NewNode("lkp_cust", "lookup_customer", etl.OpLookup, enrCust))

	// Business filter + heavy derivation.
	fltNode := etl.NewNode("flt_valid", "filter_valid_tickets", etl.OpFilter, enrCust)
	fltNode.SetParam("predicate", "ss_quantity > 0 AND ss_sales_price >= 0")
	fltNode.Cost.Selectivity = 0.92
	g.MustAddNode(fltNode)
	drv := etl.NewNode("drv_measures", "derive_net_and_margin", etl.OpDerive, derived)
	drv.Cost.PerTuple = 0.03
	drv.Cost.FailureRate = 0.015
	g.MustAddNode(drv)

	// Surrogate key assignment for the warehouse fact.
	sk := derived.With(etl.Attribute{Name: "sale_sk", Type: etl.TypeInt, Key: true})
	g.MustAddNode(etl.NewNode("sk_fact", "assign_surrogate_key", etl.OpSurrogate, sk))

	// Split to the fact load and two aggregate roll-ups.
	g.MustAddNode(etl.NewNode("split_out", "split_outputs", etl.OpSplit, sk))
	aggState := etl.NewNode("agg_state", "aggregate_by_state", etl.OpAggregate, sk)
	aggState.SetParam("group_by", "s_state")
	g.MustAddNode(aggState)
	aggCat := etl.NewNode("agg_cat", "aggregate_by_category", etl.OpAggregate, sk)
	aggCat.SetParam("group_by", "i_category")
	g.MustAddNode(aggCat)
	g.MustAddNode(etl.NewNode("srt_fact", "sort_fact", etl.OpSort, sk))

	// Loads.
	g.MustAddNode(etl.NewNode("ld_fact", "DW_sales_fact", etl.OpLoad, etl.Schema{}))
	g.MustAddNode(etl.NewNode("ld_state", "DW_sales_by_state", etl.OpLoad, etl.Schema{}))
	g.MustAddNode(etl.NewNode("ld_cat", "DW_sales_by_category", etl.OpLoad, etl.Schema{}))

	edges := [][2]etl.NodeID{
		{"src_sales", "conv_sales"},
		{"src_item", "srt_item"},
		{"src_store", "srt_store"},
		{"conv_sales", "lkp_item"},
		{"srt_item", "lkp_item"},
		{"lkp_item", "lkp_store"},
		{"srt_store", "lkp_store"},
		{"lkp_store", "lkp_cust"},
		{"src_cust", "lkp_cust"},
		{"lkp_cust", "flt_valid"},
		{"flt_valid", "drv_measures"},
		{"drv_measures", "sk_fact"},
		{"sk_fact", "split_out"},
		{"split_out", "srt_fact"},
		{"split_out", "agg_state"},
		{"split_out", "agg_cat"},
		{"srt_fact", "ld_fact"},
		{"agg_state", "ld_state"},
		{"agg_cat", "ld_cat"},
	}
	for _, e := range edges {
		g.MustAddEdge(e[0], e[1])
	}
	return g
}

// Binding returns synthetic source bindings for a flow built by this
// package. Scale is the row count of the largest source; reference sources
// are proportionally smaller, as in TPC-DS.
func Binding(g *etl.Graph, scale int, seed uint64) sim.Binding {
	if scale <= 0 {
		scale = 5000
	}
	b := sim.Binding{}
	for _, src := range g.Sources() {
		spec := data.SourceSpec{
			Name:           src.Name,
			Schema:         src.Out,
			Rows:           scale,
			UpdatesPerHour: 2,
			Seed:           seed ^ hash(src.ID),
			Defects: data.Defects{
				NullRate:  0.06,
				DupRate:   0.03,
				ErrorRate: 0.04,
			},
		}
		switch src.ID {
		case "src_item":
			spec.Rows = scale / 10
			spec.Defects = data.Defects{NullRate: 0.01}
		case "src_store":
			spec.Rows = scale / 50
			spec.Defects = data.Defects{NullRate: 0.02}
		case "src_cust":
			spec.Rows = scale / 5
			spec.Defects = data.Defects{NullRate: 0.05, DupRate: 0.01}
		}
		if spec.Rows < 1 {
			spec.Rows = 1
		}
		b[src.ID] = spec
	}
	return b
}

func hash(id etl.NodeID) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}
