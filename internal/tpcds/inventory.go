package tpcds

import "poiesis/internal/etl"

func inventorySchema() etl.Schema {
	return etl.NewSchema(
		etl.Attribute{Name: "inv_item_sk", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "inv_warehouse_sk", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "inv_date_sk", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "inv_quantity_on_hand", Type: etl.TypeInt, Nullable: true},
	)
}

func warehouseSchema() etl.Schema {
	return etl.NewSchema(
		etl.Attribute{Name: "inv_warehouse_sk", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "w_state", Type: etl.TypeString},
		etl.Attribute{Name: "w_sq_ft", Type: etl.TypeInt, Nullable: true},
	)
}

// InventoryETL builds a second TPC-DS-based process: daily inventory
// snapshots cross two channels (store + web feeds), unioned, deduplicated,
// enriched with warehouse reference data, aggregated per warehouse and
// state, and loaded into a snapshot fact plus a state-level mart. It
// stresses the union/merge and dedup paths that the sales ETL does not.
func InventoryETL() *etl.Graph {
	inv := inventorySchema()
	enriched := inv.Union(warehouseSchema())
	derived := enriched.With(etl.Attribute{Name: "stock_value", Type: etl.TypeFloat})

	g := etl.New("tpcds_inventory")
	g.MustAddNode(etl.NewNode("src_store_inv", "store_inventory_feed", etl.OpExtract, inv))
	g.MustAddNode(etl.NewNode("src_web_inv", "web_inventory_feed", etl.OpExtract, inv))
	g.MustAddNode(etl.NewNode("src_wh", "warehouse", etl.OpExtract, warehouseSchema()))

	g.MustAddNode(etl.NewNode("conv_store", "convert_store_feed", etl.OpConvert, inv))
	g.MustAddNode(etl.NewNode("conv_web", "convert_web_feed", etl.OpConvert, inv))
	g.MustAddNode(etl.NewNode("union_feeds", "union_feeds", etl.OpUnion, inv))
	dd := etl.NewNode("dedup_snap", "dedup_snapshots", etl.OpDedup, inv)
	dd.Cost.Selectivity = 0.96
	g.MustAddNode(dd)

	g.MustAddNode(etl.NewNode("lkp_wh", "lookup_warehouse", etl.OpLookup, enriched))
	fltNode := etl.NewNode("flt_onhand", "filter_positive_onhand", etl.OpFilter, enriched)
	fltNode.SetParam("predicate", "inv_quantity_on_hand >= 0")
	fltNode.Cost.Selectivity = 0.95
	g.MustAddNode(fltNode)
	drv := etl.NewNode("drv_value", "derive_stock_value", etl.OpDerive, derived)
	drv.Cost.PerTuple = 0.02
	drv.Cost.FailureRate = 0.01
	g.MustAddNode(drv)

	g.MustAddNode(etl.NewNode("split_out", "split_outputs", etl.OpSplit, derived))
	aggWh := etl.NewNode("agg_wh", "aggregate_by_warehouse", etl.OpAggregate, derived)
	aggWh.SetParam("group_by", "inv_warehouse_sk")
	g.MustAddNode(aggWh)
	aggState := etl.NewNode("agg_state", "aggregate_by_state", etl.OpAggregate, derived)
	aggState.SetParam("group_by", "w_state")
	g.MustAddNode(aggState)

	g.MustAddNode(etl.NewNode("ld_snap", "DW_inventory_snapshot", etl.OpLoad, etl.Schema{}))
	g.MustAddNode(etl.NewNode("ld_wh", "DW_inventory_by_warehouse", etl.OpLoad, etl.Schema{}))
	g.MustAddNode(etl.NewNode("ld_state", "DW_inventory_by_state", etl.OpLoad, etl.Schema{}))

	edges := [][2]etl.NodeID{
		{"src_store_inv", "conv_store"},
		{"src_web_inv", "conv_web"},
		{"conv_store", "union_feeds"},
		{"conv_web", "union_feeds"},
		{"union_feeds", "dedup_snap"},
		{"dedup_snap", "lkp_wh"},
		{"src_wh", "lkp_wh"},
		{"lkp_wh", "flt_onhand"},
		{"flt_onhand", "drv_value"},
		{"drv_value", "split_out"},
		{"split_out", "ld_snap"},
		{"split_out", "agg_wh"},
		{"split_out", "agg_state"},
		{"agg_wh", "ld_wh"},
		{"agg_state", "ld_state"},
	}
	for _, e := range edges {
		g.MustAddEdge(e[0], e[1])
	}
	return g
}
