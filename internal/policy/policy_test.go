package policy

import (
	"strings"
	"testing"

	"poiesis/internal/etl"
	"poiesis/internal/fcp"
	"poiesis/internal/measures"
	"poiesis/internal/tpcds"
)

func palette(t testing.TB, names ...string) []fcp.Pattern {
	t.Helper()
	pats, err := fcp.DefaultRegistry().Palette(names...)
	if err != nil {
		t.Fatal(err)
	}
	return pats
}

func TestExhaustiveProposesAllPoints(t *testing.T) {
	g := tpcds.PurchasesFlow()
	pats := palette(t)
	cands := Exhaustive{}.Propose(g, pats)
	// Must equal the sum of per-pattern application points.
	want := 0
	for _, p := range pats {
		want += len(fcp.ApplicationPoints(p, g))
	}
	if len(cands) != want {
		t.Errorf("exhaustive candidates = %d, want %d", len(cands), want)
	}
	// Capped variant reduces the fan-out.
	capped := Exhaustive{MaxPerPattern: 1}.Propose(g, pats)
	if len(capped) >= len(cands) {
		t.Errorf("cap did not reduce: %d vs %d", len(capped), len(cands))
	}
}

func TestGreedyTopK(t *testing.T) {
	g := tpcds.PurchasesFlow()
	pats := palette(t, fcp.NameFilterNullValues)
	all := fcp.ApplicationPoints(pats[0], g)
	if len(all) < 3 {
		t.Skip("fixture too small for TopK test")
	}
	cands := Greedy{TopK: 2}.Propose(g, pats)
	if len(cands) != 2 {
		t.Fatalf("greedy candidates = %d", len(cands))
	}
	// The greedy picks are the best-fitness points.
	ranked := fcp.RankedPoints(pats[0], g)
	if cands[0].Point != ranked[0] || cands[1].Point != ranked[1] {
		t.Error("greedy did not pick the top-ranked points")
	}
}

func TestGoalDrivenFiltersByGoal(t *testing.T) {
	g := tpcds.PurchasesFlow()
	pats := palette(t)
	goals := NewGoals(map[measures.Characteristic]float64{
		measures.Reliability: 1,
	})
	cands := GoalDriven{Goals: goals, TopK: 50}.Propose(g, pats)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		if c.Pattern.Improves() != measures.Reliability {
			t.Errorf("candidate %s targets %s", c, c.Pattern.Improves())
		}
	}
	// TopK caps output.
	few := GoalDriven{Goals: goals, TopK: 1}.Propose(g, pats)
	if len(few) != 1 {
		t.Errorf("TopK=1 gave %d", len(few))
	}
}

func TestRandomSampleDeterministicAndBounded(t *testing.T) {
	g := tpcds.SalesETL()
	pats := palette(t)
	p := RandomSample{N: 5, Seed: 42}
	a := p.Propose(g, pats)
	b := p.Propose(g, pats)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("sample sizes %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatal("sampling not deterministic")
		}
	}
	other := RandomSample{N: 5, Seed: 43}.Propose(g, pats)
	same := true
	for i := range a {
		if a[i].String() != other[i].String() {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical samples (suspicious)")
	}
	// N larger than the space returns everything.
	all := RandomSample{N: 100000, Seed: 1}.Propose(g, pats)
	exh := Exhaustive{}.Propose(g, pats)
	if len(all) != len(exh) {
		t.Errorf("oversized sample = %d, exhaustive = %d", len(all), len(exh))
	}
}

func TestCandidateString(t *testing.T) {
	g := tpcds.PurchasesFlow()
	pats := palette(t, fcp.NameAddCheckpoint)
	cands := Exhaustive{}.Propose(g, pats)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	s := cands[0].String()
	if !strings.Contains(s, fcp.NameAddCheckpoint) || !strings.Contains(s, "edge:") {
		t.Errorf("candidate string = %q", s)
	}
}

// onePerCharacteristic is a user-defined deployment policy (P3: users define
// their own deployment policies by implementing the Policy interface): it
// keeps only the single best placement per quality characteristic.
type onePerCharacteristic struct{}

func (onePerCharacteristic) Name() string { return "one_per_characteristic" }

func (onePerCharacteristic) Propose(g *etl.Graph, palette []fcp.Pattern) []Candidate {
	best := map[measures.Characteristic]Candidate{}
	var order []measures.Characteristic
	for _, pat := range palette {
		for _, pt := range fcp.ApplicationPoints(pat, g) {
			c := Candidate{Pattern: pat, Point: pt, Fitness: pat.Fitness(g, pt)}
			cur, ok := best[pat.Improves()]
			if !ok {
				order = append(order, pat.Improves())
			}
			if !ok || c.Fitness > cur.Fitness {
				best[pat.Improves()] = c
			}
		}
	}
	out := make([]Candidate, 0, len(order))
	for _, char := range order {
		out = append(out, best[char])
	}
	return out
}

func TestCustomPolicyImplementation(t *testing.T) {
	g := tpcds.PurchasesFlow()
	pats := palette(t)
	var pol Policy = onePerCharacteristic{}
	cands := pol.Propose(g, pats)
	if len(cands) == 0 {
		t.Fatal("custom policy proposed nothing")
	}
	seen := map[measures.Characteristic]bool{}
	for _, c := range cands {
		char := c.Pattern.Improves()
		if seen[char] {
			t.Errorf("characteristic %s proposed twice", char)
		}
		seen[char] = true
	}
	// The default palette covers performance, data quality and reliability
	// on this flow.
	for _, char := range []measures.Characteristic{
		measures.Performance, measures.DataQuality, measures.Reliability,
	} {
		if !seen[char] {
			t.Errorf("no candidate for %s", char)
		}
	}
}

func TestGoalsUtility(t *testing.T) {
	goals := NewGoals(map[measures.Characteristic]float64{
		measures.Performance: 2,
		measures.DataQuality: 1,
	})
	r := &measures.Report{Chars: []measures.CharacteristicReport{
		{Characteristic: measures.Performance, Score: 0.5},
		{Characteristic: measures.DataQuality, Score: 0.8},
		{Characteristic: measures.Reliability, Score: 0.9}, // weight 0
	}}
	want := 2*0.5 + 1*0.8
	if got := goals.Utility(r); got != want {
		t.Errorf("utility = %f, want %f", got, want)
	}
	if goals.Weight(measures.Reliability) != 0 {
		t.Error("unset weight should be 0")
	}
}

func TestConstraints(t *testing.T) {
	r := &measures.Report{Chars: []measures.CharacteristicReport{
		{
			Characteristic: measures.Performance,
			Score:          0.6,
			Measures: []measures.Measure{
				{Name: measures.MCycleTime, Value: 120},
			},
		},
	}}
	if !MaxMeasure(measures.Performance, measures.MCycleTime, 150).Satisfied(r) {
		t.Error("120 <= 150 should pass")
	}
	if MaxMeasure(measures.Performance, measures.MCycleTime, 100).Satisfied(r) {
		t.Error("120 <= 100 should fail")
	}
	if !MinMeasure(measures.Performance, measures.MCycleTime, 100).Satisfied(r) {
		t.Error("120 >= 100 should pass")
	}
	if MinMeasure(measures.Performance, "missing", 0).Satisfied(r) {
		t.Error("missing measure should fail")
	}
	if !MinScore(measures.Performance, 0.5).Satisfied(r) {
		t.Error("0.6 >= 0.5 should pass")
	}
	if MinScore(measures.DataQuality, 0.1).Satisfied(r) {
		t.Error("absent characteristic scores 0, must fail")
	}

	ok, name := CheckAll(r, []Constraint{
		MinScore(measures.Performance, 0.5),
		MaxMeasure(measures.Performance, measures.MCycleTime, 100),
	})
	if ok || !strings.Contains(name, measures.MCycleTime) {
		t.Errorf("CheckAll = %v, %q", ok, name)
	}
	if ok, _ := CheckAll(r, nil); !ok {
		t.Error("empty constraint set should pass")
	}
}
