package policy

import (
	"fmt"

	"poiesis/internal/measures"
)

// Constraint rejects alternative designs whose estimated measures violate a
// user-defined bound: "the set of constraints based on estimated measures"
// (§3). Constraints are evaluated after measure estimation; violating
// designs are excluded before the skyline.
type Constraint interface {
	// Name identifies the constraint in diagnostics.
	Name() string
	// Satisfied reports whether the design's report passes.
	Satisfied(r *measures.Report) bool
}

type constraintFunc struct {
	name string
	fn   func(*measures.Report) bool
}

func (c constraintFunc) Name() string                      { return c.name }
func (c constraintFunc) Satisfied(r *measures.Report) bool { return c.fn(r) }

// NewConstraint builds a constraint from a name and predicate.
func NewConstraint(name string, fn func(*measures.Report) bool) Constraint {
	return constraintFunc{name: name, fn: fn}
}

// Bound is the declarative shape of a constraint: one interval endpoint on a
// measure (or, with Measure empty, a characteristic's composite score).
// Opaque predicate constraints (NewConstraint) have no Bound; the standard
// Max/Min/MinScore constructors expose theirs through the Bounded interface
// so static achievability checking (etl.Lint, planner pruning) can reason
// about them without evaluating anything.
type Bound struct {
	Characteristic measures.Characteristic
	// Measure names the bounded measure; empty means the composite score.
	Measure string
	Min     *float64
	Max     *float64
	// Label is the owning constraint's Name.
	Label string
}

// Bounded is implemented by constraints whose predicate is a declared
// interval bound.
type Bounded interface {
	Bound() Bound
}

// boundedConstraint pairs the evaluating predicate with its declared bound.
type boundedConstraint struct {
	constraintFunc
	bound Bound
}

func (c boundedConstraint) Bound() Bound { return c.bound }

// BoundsOf extracts the declared bounds of a constraint list; opaque
// predicates contribute nothing.
func BoundsOf(cs []Constraint) []Bound {
	var out []Bound
	for _, c := range cs {
		if b, ok := c.(Bounded); ok {
			out = append(out, b.Bound())
		}
	}
	return out
}

// MaxMeasure bounds a raw measure value from above (e.g. cycle time below an
// SLA).
func MaxMeasure(c measures.Characteristic, name string, bound float64) Constraint {
	label := fmt.Sprintf("%s.%s <= %g", c, name, bound)
	return boundedConstraint{
		constraintFunc: constraintFunc{name: label, fn: func(r *measures.Report) bool {
			v, ok := r.MeasureValue(c, name)
			return ok && v <= bound
		}},
		bound: Bound{Characteristic: c, Measure: name, Max: &bound, Label: label},
	}
}

// MinMeasure bounds a raw measure value from below (e.g. completeness of at
// least 0.99).
func MinMeasure(c measures.Characteristic, name string, bound float64) Constraint {
	label := fmt.Sprintf("%s.%s >= %g", c, name, bound)
	return boundedConstraint{
		constraintFunc: constraintFunc{name: label, fn: func(r *measures.Report) bool {
			v, ok := r.MeasureValue(c, name)
			return ok && v >= bound
		}},
		bound: Bound{Characteristic: c, Measure: name, Min: &bound, Label: label},
	}
}

// MinScore bounds a characteristic's composite score from below.
func MinScore(c measures.Characteristic, bound float64) Constraint {
	label := fmt.Sprintf("score(%s) >= %g", c, bound)
	return boundedConstraint{
		constraintFunc: constraintFunc{name: label, fn: func(r *measures.Report) bool {
			return r.Score(c) >= bound
		}},
		bound: Bound{Characteristic: c, Min: &bound, Label: label},
	}
}

// CheckAll evaluates all constraints, returning the first violated one's
// name (ok=false) or ok=true.
func CheckAll(r *measures.Report, cs []Constraint) (bool, string) {
	for _, c := range cs {
		if !c.Satisfied(r) {
			return false, c.Name()
		}
	}
	return true, ""
}
