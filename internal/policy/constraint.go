package policy

import (
	"fmt"

	"poiesis/internal/measures"
)

// Constraint rejects alternative designs whose estimated measures violate a
// user-defined bound: "the set of constraints based on estimated measures"
// (§3). Constraints are evaluated after measure estimation; violating
// designs are excluded before the skyline.
type Constraint interface {
	// Name identifies the constraint in diagnostics.
	Name() string
	// Satisfied reports whether the design's report passes.
	Satisfied(r *measures.Report) bool
}

type constraintFunc struct {
	name string
	fn   func(*measures.Report) bool
}

func (c constraintFunc) Name() string                      { return c.name }
func (c constraintFunc) Satisfied(r *measures.Report) bool { return c.fn(r) }

// NewConstraint builds a constraint from a name and predicate.
func NewConstraint(name string, fn func(*measures.Report) bool) Constraint {
	return constraintFunc{name: name, fn: fn}
}

// MaxMeasure bounds a raw measure value from above (e.g. cycle time below an
// SLA).
func MaxMeasure(c measures.Characteristic, name string, bound float64) Constraint {
	label := fmt.Sprintf("%s.%s <= %g", c, name, bound)
	return NewConstraint(label, func(r *measures.Report) bool {
		v, ok := r.MeasureValue(c, name)
		return ok && v <= bound
	})
}

// MinMeasure bounds a raw measure value from below (e.g. completeness of at
// least 0.99).
func MinMeasure(c measures.Characteristic, name string, bound float64) Constraint {
	label := fmt.Sprintf("%s.%s >= %g", c, name, bound)
	return NewConstraint(label, func(r *measures.Report) bool {
		v, ok := r.MeasureValue(c, name)
		return ok && v >= bound
	})
}

// MinScore bounds a characteristic's composite score from below.
func MinScore(c measures.Characteristic, bound float64) Constraint {
	label := fmt.Sprintf("score(%s) >= %g", c, bound)
	return NewConstraint(label, func(r *measures.Report) bool {
		return r.Score(c) >= bound
	})
}

// CheckAll evaluates all constraints, returning the first violated one's
// name (ok=false) or ok=true.
func CheckAll(r *measures.Report, cs []Constraint) (bool, string) {
	for _, c := range cs {
		if !c.Satisfied(r) {
			return false, c.Name()
		}
	}
	return true, ""
}
