// Package policy implements the deployment policies of POIESIS: the
// user-configurable strategies that decide which Flow Component Patterns are
// deployed where. "The user can ... select the deployment policy for the
// patterns", and policies "can be configured according to the user-defined
// prioritization of goals, as well as the set of constraints based on
// estimated measures" (§3).
package policy

import (
	"fmt"
	"sort"

	"poiesis/internal/data"
	"poiesis/internal/etl"
	"poiesis/internal/fcp"
	"poiesis/internal/measures"
)

// Candidate is one proposed pattern application: a pattern paired with a
// valid application point and its heuristic fitness.
type Candidate struct {
	Pattern fcp.Pattern
	Point   fcp.Point
	Fitness float64
}

// String renders "pattern@point(fitness)".
func (c Candidate) String() string {
	return fmt.Sprintf("%s@%s(%.2f)", c.Pattern.Name(), c.Point, c.Fitness)
}

// Policy proposes the pattern applications to explore on a flow. The Planner
// invokes it once per generation round on every frontier design.
type Policy interface {
	// Name identifies the policy in reports and benchmarks.
	Name() string
	// Propose returns candidates in deterministic order.
	Propose(g *etl.Graph, palette []fcp.Pattern) []Candidate
}

// allCandidates enumerates every valid application of every palette pattern.
func allCandidates(g *etl.Graph, palette []fcp.Pattern) []Candidate {
	var out []Candidate
	for _, pat := range palette {
		for _, pt := range fcp.ApplicationPoints(pat, g) {
			out = append(out, Candidate{Pattern: pat, Point: pt, Fitness: pat.Fitness(g, pt)})
		}
	}
	return out
}

// Exhaustive proposes every valid application point of every pattern: the
// guarantee that "all of the potential application points on the ETL flow
// are checked for each FCP". MaxPerPattern caps the per-pattern fan-out
// (0 = unlimited).
type Exhaustive struct {
	MaxPerPattern int
}

// Name implements Policy.
func (e Exhaustive) Name() string { return "exhaustive" }

// Propose implements Policy.
func (e Exhaustive) Propose(g *etl.Graph, palette []fcp.Pattern) []Candidate {
	if e.MaxPerPattern <= 0 {
		return allCandidates(g, palette)
	}
	var out []Candidate
	for _, pat := range palette {
		pts := fcp.RankedPoints(pat, g)
		if len(pts) > e.MaxPerPattern {
			pts = pts[:e.MaxPerPattern]
		}
		for _, pt := range pts {
			out = append(out, Candidate{Pattern: pat, Point: pt, Fitness: pat.Fitness(g, pt)})
		}
	}
	return out
}

// Greedy proposes only the TopK best-fitness points per pattern, following
// the placement heuristics (checkpoints after complex operations, cleaning
// near sources).
type Greedy struct {
	TopK int
}

// Name implements Policy.
func (p Greedy) Name() string { return "greedy" }

// Propose implements Policy.
func (p Greedy) Propose(g *etl.Graph, palette []fcp.Pattern) []Candidate {
	k := p.TopK
	if k <= 0 {
		k = 1
	}
	var out []Candidate
	for _, pat := range palette {
		pts := fcp.RankedPoints(pat, g)
		if len(pts) > k {
			pts = pts[:k]
		}
		for _, pt := range pts {
			out = append(out, Candidate{Pattern: pat, Point: pt, Fitness: pat.Fitness(g, pt)})
		}
	}
	return out
}

// GoalDriven keeps only patterns that improve characteristics with positive
// goal weight, ranks candidates by weight x fitness, and returns the TopK
// overall. This is the "user-defined prioritization of goals" policy.
type GoalDriven struct {
	Goals Goals
	TopK  int
}

// Name implements Policy.
func (p GoalDriven) Name() string { return "goal_driven" }

// Propose implements Policy.
func (p GoalDriven) Propose(g *etl.Graph, palette []fcp.Pattern) []Candidate {
	k := p.TopK
	if k <= 0 {
		k = 8
	}
	var out []Candidate
	for _, pat := range palette {
		w := p.Goals.Weight(pat.Improves())
		if w <= 0 {
			continue
		}
		for _, pt := range fcp.ApplicationPoints(pat, g) {
			out = append(out, Candidate{
				Pattern: pat,
				Point:   pt,
				Fitness: w * pat.Fitness(g, pt),
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Fitness != out[j].Fitness {
			return out[i].Fitness > out[j].Fitness
		}
		return out[i].String() < out[j].String()
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// RandomSample draws N candidates uniformly from the exhaustive set, with a
// deterministic seed. It trades completeness for bounded exploration on very
// large flows.
type RandomSample struct {
	N    int
	Seed uint64
}

// Name implements Policy.
func (p RandomSample) Name() string { return "random_sample" }

// Propose implements Policy.
func (p RandomSample) Propose(g *etl.Graph, palette []fcp.Pattern) []Candidate {
	all := allCandidates(g, palette)
	n := p.N
	if n <= 0 {
		n = 16
	}
	if len(all) <= n {
		return all
	}
	// Deterministic partial Fisher-Yates keyed by the flow fingerprint so
	// different frontier designs sample differently but reproducibly.
	rng := data.NewRNG(p.Seed ^ hashString(g.Fingerprint()))
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(all)-i)
		all[i], all[j] = all[j], all[i]
	}
	out := all[:n]
	sort.SliceStable(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func hashString(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Goals is the user-defined prioritisation of quality characteristics.
type Goals struct {
	weights map[measures.Characteristic]float64
}

// NewGoals builds a goal set from characteristic weights.
func NewGoals(weights map[measures.Characteristic]float64) Goals {
	w := make(map[measures.Characteristic]float64, len(weights))
	for k, v := range weights {
		w[k] = v
	}
	return Goals{weights: w}
}

// Weight returns the weight of a characteristic (0 when unset).
func (g Goals) Weight(c measures.Characteristic) float64 { return g.weights[c] }

// Utility scores a report as the weighted sum of characteristic scores: the
// scalarised objective used to rank designs when the user wants a single
// recommendation out of the skyline.
func (g Goals) Utility(r *measures.Report) float64 {
	u := 0.0
	for c, w := range g.weights {
		u += w * r.Score(c)
	}
	return u
}
