// Package fcp implements Flow Component Patterns: "predefined constructs
// that improve certain quality characteristics, but do not alter [the
// flow's] main functionality" (§2.2). A pattern is internally represented
// in the same format as the process flow it is deployed on — a small ETL
// sub-flow plus binding logic — and is woven into an initial flow at a valid
// application point, which "can be either a node (i.e., an ETL flow
// operation), or an edge or the entire ETL flow graph":
// P = P_E ∪ P_V ∪ P_G.
//
// Each pattern declares conjunctive prerequisites that gate validity and a
// fitness heuristic in [0,1] that ranks placements (e.g. checkpoints after
// the most complex operations; data cleaning as close as possible to the
// source operations).
package fcp

import (
	"fmt"

	"poiesis/internal/etl"
)

// PointKind distinguishes the three application-point classes of §2.2.
type PointKind int

// The application-point classes.
const (
	NodePoint  PointKind = iota // P_V: applied on an ETL flow operation
	EdgePoint                   // P_E: applied on a transition
	GraphPoint                  // P_G: applied on the entire flow graph
)

// String names the point kind.
func (k PointKind) String() string {
	switch k {
	case NodePoint:
		return "node"
	case EdgePoint:
		return "edge"
	case GraphPoint:
		return "graph"
	default:
		return "invalid"
	}
}

// Point is one concrete application point in a flow.
type Point struct {
	Kind PointKind
	// Node is set for NodePoint.
	Node etl.NodeID
	// Edge is set for EdgePoint.
	Edge etl.Edge
}

// AtNode builds a node application point.
func AtNode(id etl.NodeID) Point { return Point{Kind: NodePoint, Node: id} }

// AtEdge builds an edge application point.
func AtEdge(from, to etl.NodeID) Point {
	return Point{Kind: EdgePoint, Edge: etl.Edge{From: from, To: to}}
}

// AtGraph builds the whole-graph application point.
func AtGraph() Point { return Point{Kind: GraphPoint} }

// String renders the point for logs and fingerprint-free comparisons.
func (p Point) String() string {
	switch p.Kind {
	case NodePoint:
		return "node:" + string(p.Node)
	case EdgePoint:
		return "edge:" + p.Edge.String()
	case GraphPoint:
		return "graph"
	default:
		return "invalid"
	}
}

// Valid reports whether the point refers to existing elements of g.
func (p Point) Valid(g *etl.Graph) bool {
	switch p.Kind {
	case NodePoint:
		return g.Node(p.Node) != nil
	case EdgePoint:
		return g.HasEdge(p.Edge.From, p.Edge.To)
	case GraphPoint:
		return true
	default:
		return false
	}
}

// UpstreamSchema returns the schema flowing into the point: the producing
// node's output schema for an edge, the node's input schema for a node, and
// the empty schema for the graph point.
func (p Point) UpstreamSchema(g *etl.Graph) etl.Schema {
	switch p.Kind {
	case EdgePoint:
		if n := g.Node(p.Edge.From); n != nil {
			return n.Out
		}
	case NodePoint:
		return g.InputSchema(p.Node)
	}
	return etl.Schema{}
}

// UpstreamDistance returns the minimum number of edges between the point and
// any source operation (0 for the graph point).
func (p Point) UpstreamDistance(g *etl.Graph) int {
	dist := g.UpstreamDistance()
	switch p.Kind {
	case EdgePoint:
		return dist[p.Edge.From] + 1
	case NodePoint:
		return dist[p.Node]
	default:
		return 0
	}
}

// Application records one pattern deployment: which pattern, where, and the
// node IDs it introduced. The Planner attaches these to each alternative so
// the user's final selection can be replayed onto the real process.
type Application struct {
	Pattern string
	Point   Point
	// Added lists the nodes the application generated.
	Added []etl.NodeID
}

// String renders "pattern@point".
func (a Application) String() string {
	return fmt.Sprintf("%s@%s", a.Pattern, a.Point)
}
