package fcp

import (
	"testing"

	"poiesis/internal/etl"
	"poiesis/internal/measures"
)

// pushdownFlow: src -> derive(expensive) -> filter(selective) -> load, where
// the filter only touches attributes that exist before the derive.
func pushdownFlow(t testing.TB) *etl.Graph {
	t.Helper()
	s := etl.NewSchema(
		etl.Attribute{Name: "id", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "v", Type: etl.TypeFloat},
	)
	derived := s.With(etl.Attribute{Name: "computed", Type: etl.TypeFloat})
	g := etl.New("pushdown")
	g.MustAddNode(etl.NewNode("src", "S", etl.OpExtract, s))
	drv := etl.NewNode("drv", "derive", etl.OpDerive, derived)
	drv.Cost.PerTuple = 0.05
	g.MustAddNode(drv)
	flt := etl.NewNode("flt", "filter", etl.OpFilter, s) // passes only pre-derive attrs
	flt.Cost.Selectivity = 0.5
	g.MustAddNode(flt)
	g.MustAddNode(etl.NewNode("ld", "DW", etl.OpLoad, etl.Schema{}))
	g.MustAddEdge("src", "drv")
	g.MustAddEdge("drv", "flt")
	g.MustAddEdge("flt", "ld")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPushDownSelectionApplication(t *testing.T) {
	g := pushdownFlow(t)
	pat := NewPushDownSelection()
	if pat.Improves() != measures.Performance {
		t.Error("pattern should target performance")
	}
	pts := ApplicationPoints(pat, g)
	if len(pts) != 1 || pts[0].Node != "flt" {
		t.Fatalf("points = %v", pts)
	}
	g2 := g.Clone()
	app, err := pat.Apply(g2, pts[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Added) != 0 {
		t.Errorf("push-down should add no nodes, got %v", app.Added)
	}
	if !g2.HasEdge("src", "flt") || !g2.HasEdge("flt", "drv") {
		t.Errorf("filter not moved before derive:\n%s", g2)
	}
	if err := g2.Validate(); err != nil {
		t.Errorf("invalid after push-down: %v", err)
	}
	// Fingerprints differ (the designs are distinct).
	if g.Fingerprint() == g2.Fingerprint() {
		t.Error("push-down left fingerprint unchanged")
	}
	// The moved filter keeps its identity and is not marked generated.
	if g2.Node("flt").Generated {
		t.Error("reordered node must not be marked generated")
	}
	if g2.Node("flt").Param("optimized.by") != NamePushDownSelection {
		t.Error("provenance parameter missing")
	}
}

func TestPushDownSelectionSchemaGate(t *testing.T) {
	// A filter whose output includes the derived attribute cannot be pushed
	// before the derive.
	g := pushdownFlow(t)
	derived := g.Node("drv").Out
	g.Node("flt").Out = derived.Clone()
	if pts := ApplicationPoints(NewPushDownSelection(), g); len(pts) != 0 {
		t.Errorf("schema-dependent filter should not be pushable: %v", pts)
	}
}

func TestPushDownSelectionCostGate(t *testing.T) {
	// Pushing past a cheap predecessor is pointless; prerequisite rejects.
	g := pushdownFlow(t)
	g.Node("drv").Cost.PerTuple = 0.0001
	if pts := ApplicationPoints(NewPushDownSelection(), g); len(pts) != 0 {
		t.Errorf("cheap predecessor should not attract push-down: %v", pts)
	}
}

func TestPushDownSelectionBranchGate(t *testing.T) {
	// A filter fed by a splitting operation cannot swap.
	s := etl.NewSchema(etl.Attribute{Name: "id", Type: etl.TypeInt, Key: true})
	g := etl.New("branch")
	g.MustAddNode(etl.NewNode("src", "S", etl.OpExtract, s))
	g.MustAddNode(etl.NewNode("spl", "split", etl.OpSplit, s))
	flt := etl.NewNode("flt", "filter", etl.OpFilter, s)
	flt.Cost.Selectivity = 0.5
	g.MustAddNode(flt)
	g.MustAddNode(etl.NewNode("ld1", "A", etl.OpLoad, etl.Schema{}))
	g.MustAddNode(etl.NewNode("ld2", "B", etl.OpLoad, etl.Schema{}))
	g.MustAddEdge("src", "spl")
	g.MustAddEdge("spl", "flt")
	g.MustAddEdge("spl", "ld2")
	g.MustAddEdge("flt", "ld1")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if pts := ApplicationPoints(NewPushDownSelection(), g); len(pts) != 0 {
		t.Errorf("split predecessor should not be swappable: %v", pts)
	}
}

func TestPushDownSelectionFitness(t *testing.T) {
	g := pushdownFlow(t)
	pat := NewPushDownSelection()
	f := pat.Fitness(g, AtNode("flt"))
	if f <= 0 || f > 1 {
		t.Errorf("fitness = %f", f)
	}
	// A more selective filter saves more work -> higher fitness.
	g2 := g.Clone()
	g2.MutableNode("flt").Cost.Selectivity = 0.1
	if pat.Fitness(g2, AtNode("flt")) <= f {
		t.Error("higher selectivity should raise fitness")
	}
}

func TestPushDownInExtendedRegistry(t *testing.T) {
	r := DefaultRegistry()
	if err := r.Register(NewPushDownSelection()); err != nil {
		t.Fatal(err)
	}
	pats, err := r.Palette(NamePushDownSelection)
	if err != nil || len(pats) != 1 {
		t.Fatalf("palette: %v %v", pats, err)
	}
}
