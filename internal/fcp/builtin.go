package fcp

import (
	"fmt"

	"poiesis/internal/etl"
	"poiesis/internal/measures"
)

// nearSourceFitness implements the cleaning-placement heuristic: "the
// application of FCPs related to data cleaning is encouraged as close as
// possible to the operations for inputting data sources, to prevent
// cumulative side-effects of reduced data quality".
func nearSourceFitness(g *etl.Graph, p Point) float64 {
	return 1 / (1 + float64(p.UpstreamDistance(g)))
}

// afterComplexFitness implements the checkpoint-placement heuristic: "the
// addition of a checkpoint is encouraged after the execution of the most
// complex operations of the ETL flow, in order to avoid the repetition of
// process-intensive tasks in case of a recovery".
func afterComplexFitness(g *etl.Graph, id etl.NodeID) float64 {
	max := maxComplexity(g)
	if max <= 0 {
		return 0
	}
	n := g.Node(id)
	if n == nil {
		return 0
	}
	return n.Complexity() / max
}

// ---------------------------------------------------------------------
// FilterNullValues (P_E, improves data quality)

type filterNullValues struct {
	conds []Condition
}

// NewFilterNullValues builds the FilterNullValues pattern: "itself an ETL
// flow consisting of only one operation — a filter that deletes entries with
// null values from its input", interposed between two consecutive
// operations.
func NewFilterNullValues() Pattern {
	return &filterNullValues{conds: []Condition{
		SchemaHasNullable(),
		NoAdjacentKind(etl.OpFilterNull),
	}}
}

func (f *filterNullValues) Name() string                      { return NameFilterNullValues }
func (f *filterNullValues) Kind() PointKind                   { return EdgePoint }
func (f *filterNullValues) Improves() measures.Characteristic { return measures.DataQuality }
func (f *filterNullValues) Prerequisites() []Condition        { return f.conds }
func (f *filterNullValues) Fitness(g *etl.Graph, p Point) float64 {
	return nearSourceFitness(g, p)
}

func (f *filterNullValues) Apply(g *etl.Graph, p Point) (Application, error) {
	if !Applicable(f, g, p) {
		return Application{}, fmt.Errorf("fcp: %s not applicable at %s", f.Name(), p)
	}
	up := p.UpstreamSchema(g)
	n := etl.NewNode(g.FreshID("fnv"), "filter_null_values", etl.OpFilterNull, up.WithoutNullability())
	n.PatternName = f.Name()
	if err := g.InsertOnEdge(p.Edge.From, p.Edge.To, n); err != nil {
		return Application{}, err
	}
	return Application{Pattern: f.Name(), Point: p, Added: []etl.NodeID{n.ID}}, nil
}

// ---------------------------------------------------------------------
// RemoveDuplicateEntries (P_E, improves data quality)

type removeDuplicates struct {
	conds []Condition
}

// NewRemoveDuplicateEntries builds the RemoveDuplicateEntries pattern: a
// key-based de-duplication operation interposed on a transition.
func NewRemoveDuplicateEntries() Pattern {
	return &removeDuplicates{conds: []Condition{
		SchemaHasKey(),
		NoAdjacentKind(etl.OpDedup),
	}}
}

func (r *removeDuplicates) Name() string                      { return NameRemoveDuplicateEntries }
func (r *removeDuplicates) Kind() PointKind                   { return EdgePoint }
func (r *removeDuplicates) Improves() measures.Characteristic { return measures.DataQuality }
func (r *removeDuplicates) Prerequisites() []Condition        { return r.conds }
func (r *removeDuplicates) Fitness(g *etl.Graph, p Point) float64 {
	return nearSourceFitness(g, p)
}

func (r *removeDuplicates) Apply(g *etl.Graph, p Point) (Application, error) {
	if !Applicable(r, g, p) {
		return Application{}, fmt.Errorf("fcp: %s not applicable at %s", r.Name(), p)
	}
	up := p.UpstreamSchema(g)
	n := etl.NewNode(g.FreshID("dedup"), "remove_duplicate_entries", etl.OpDedup, up.Clone())
	n.PatternName = r.Name()
	if err := g.InsertOnEdge(p.Edge.From, p.Edge.To, n); err != nil {
		return Application{}, err
	}
	return Application{Pattern: r.Name(), Point: p, Added: []etl.NodeID{n.ID}}, nil
}

// ---------------------------------------------------------------------
// CrosscheckSources (P_E, improves data quality)

type crosscheckSources struct {
	conds []Condition
}

// NewCrosscheckSources builds the CrosscheckSources pattern: "the goal of
// improved data quality ... would result in crosschecking with alternative
// data sources". It interposes a crosscheck operation fed by an additional
// alternative extract.
func NewCrosscheckSources() Pattern {
	return &crosscheckSources{conds: []Condition{
		SchemaHasKey(),
		UpstreamDistanceAtMost(2),
		NoAdjacentKind(etl.OpCrosscheck),
		EdgeEndpointsNotGenerated(),
	}}
}

func (c *crosscheckSources) Name() string                      { return NameCrosscheckSources }
func (c *crosscheckSources) Kind() PointKind                   { return EdgePoint }
func (c *crosscheckSources) Improves() measures.Characteristic { return measures.DataQuality }
func (c *crosscheckSources) Prerequisites() []Condition        { return c.conds }
func (c *crosscheckSources) Fitness(g *etl.Graph, p Point) float64 {
	return nearSourceFitness(g, p)
}

func (c *crosscheckSources) Apply(g *etl.Graph, p Point) (Application, error) {
	if !Applicable(c, g, p) {
		return Application{}, fmt.Errorf("fcp: %s not applicable at %s", c.Name(), p)
	}
	up := p.UpstreamSchema(g)
	cc := etl.NewNode(g.FreshID("xchk"), "crosscheck_sources", etl.OpCrosscheck, up.Clone())
	cc.PatternName = c.Name()
	alt := etl.NewNode(g.FreshID("altsrc"), "alternative_source", etl.OpExtract, up.Clone())
	alt.PatternName = c.Name()
	alt.Generated = true
	if err := g.InsertOnEdge(p.Edge.From, p.Edge.To, cc); err != nil {
		return Application{}, err
	}
	if err := g.AddNode(alt); err != nil {
		return Application{}, err
	}
	if err := g.AddEdge(alt.ID, cc.ID); err != nil {
		return Application{}, err
	}
	return Application{Pattern: c.Name(), Point: p, Added: []etl.NodeID{cc.ID, alt.ID}}, nil
}

// ---------------------------------------------------------------------
// ParallelizeTask (P_V, improves performance)

type parallelizeTask struct {
	degree int
	conds  []Condition
}

// NewParallelizeTask builds the ParallelizeTask pattern with the given
// degree: "a node that can be replaced by multiple copies of itself". The
// rewrite is the Fig. 2a construction — horizontal partition, k copies of
// the computational-intensive task, merge.
func NewParallelizeTask(degree int) Pattern {
	if degree < 2 {
		degree = 2
	}
	return &parallelizeTask{
		degree: degree,
		conds: []Condition{
			NodeKindIn(etl.OpDerive, etl.OpConvert, etl.OpSurrogate),
			NodeNotGenerated(),
			NodeComplexityAtLeast(0.3),
			SchemaHasNumeric(),
		},
	}
}

func (t *parallelizeTask) Name() string                      { return NameParallelizeTask }
func (t *parallelizeTask) Kind() PointKind                   { return NodePoint }
func (t *parallelizeTask) Improves() measures.Characteristic { return measures.Performance }
func (t *parallelizeTask) Prerequisites() []Condition        { return t.conds }
func (t *parallelizeTask) Fitness(g *etl.Graph, p Point) float64 {
	return afterComplexFitness(g, p.Node)
}

func (t *parallelizeTask) Apply(g *etl.Graph, p Point) (Application, error) {
	if !Applicable(t, g, p) {
		return Application{}, fmt.Errorf("fcp: %s not applicable at %s", t.Name(), p)
	}
	old := g.Node(p.Node)
	in := g.InputSchema(p.Node)
	part := etl.NewNode(g.FreshID("part"), "horizontal_partition", etl.OpPartition, in.Clone())
	part.PatternName = t.Name()
	mrg := etl.NewNode(g.FreshID("mrg"), "merge", etl.OpMerge, old.Out.Clone())
	mrg.PatternName = t.Name()
	copies := make([]*etl.Node, t.degree)
	for i := range copies {
		cp := old.Clone()
		cp.ID = g.FreshID("par")
		cp.Name = fmt.Sprintf("%s (copy %d)", old.Name, i+1)
		cp.PatternName = t.Name()
		copies[i] = cp
	}
	nodes := append([]*etl.Node{part, mrg}, copies...)
	if err := g.ReplaceNode(p.Node, part.ID, mrg.ID, nodes...); err != nil {
		return Application{}, err
	}
	added := []etl.NodeID{part.ID, mrg.ID}
	for _, cp := range copies {
		if err := g.AddEdge(part.ID, cp.ID); err != nil {
			return Application{}, err
		}
		if err := g.AddEdge(cp.ID, mrg.ID); err != nil {
			return Application{}, err
		}
		added = append(added, cp.ID)
	}
	return Application{Pattern: t.Name(), Point: p, Added: added}, nil
}

// ---------------------------------------------------------------------
// AddCheckpoint (P_E, improves reliability)

type addCheckpoint struct {
	horizon int
	conds   []Condition
}

// NewAddCheckpoint builds the AddCheckpoint pattern: "the goal of improving
// reliability brings about the addition of a recovery point to the
// sub-process" (Fig. 2b). A savepoint operation persists intermediary data
// so a failure downstream restarts from it instead of from the sources.
func NewAddCheckpoint(horizon int) Pattern {
	if horizon < 1 {
		horizon = 1
	}
	return &addCheckpoint{
		horizon: horizon,
		conds: []Condition{
			NoCheckpointWithin(horizon),
		},
	}
}

func (a *addCheckpoint) Name() string                      { return NameAddCheckpoint }
func (a *addCheckpoint) Kind() PointKind                   { return EdgePoint }
func (a *addCheckpoint) Improves() measures.Characteristic { return measures.Reliability }
func (a *addCheckpoint) Prerequisites() []Condition        { return a.conds }
func (a *addCheckpoint) Fitness(g *etl.Graph, p Point) float64 {
	// Checkpoint after the most complex operations.
	return afterComplexFitness(g, p.Edge.From)
}

func (a *addCheckpoint) Apply(g *etl.Graph, p Point) (Application, error) {
	if !Applicable(a, g, p) {
		return Application{}, fmt.Errorf("fcp: %s not applicable at %s", a.Name(), p)
	}
	up := p.UpstreamSchema(g)
	n := etl.NewNode(g.FreshID("sp"), "persist_intermediary_data", etl.OpCheckpoint, up.Clone())
	n.PatternName = a.Name()
	if err := g.InsertOnEdge(p.Edge.From, p.Edge.To, n); err != nil {
		return Application{}, err
	}
	return Application{Pattern: a.Name(), Point: p, Added: []etl.NodeID{n.ID}}, nil
}

// ---------------------------------------------------------------------
// TuneRecurrenceFrequency (P_G, improves data quality)

type tuneRecurrence struct {
	factor float64
	conds  []Condition
}

// NewTuneRecurrenceFrequency builds the graph-wide pattern "adjusting the
// frequency of process recurrence" (§2.2): the recurrence period is divided
// by factor, improving freshness at the price of proportionally higher
// resource cost.
func NewTuneRecurrenceFrequency(factor float64) Pattern {
	if factor <= 1 {
		factor = 2
	}
	return &tuneRecurrence{
		factor: factor,
		conds: []Condition{
			GraphParamAbove("schedule.period_minutes", 10, 60),
		},
	}
}

func (t *tuneRecurrence) Name() string                      { return NameTuneRecurrence }
func (t *tuneRecurrence) Kind() PointKind                   { return GraphPoint }
func (t *tuneRecurrence) Improves() measures.Characteristic { return measures.DataQuality }
func (t *tuneRecurrence) Prerequisites() []Condition        { return t.conds }
func (t *tuneRecurrence) Fitness(g *etl.Graph, p Point) float64 {
	return 0.5
}

func (t *tuneRecurrence) Apply(g *etl.Graph, p Point) (Application, error) {
	if !Applicable(t, g, p) {
		return Application{}, fmt.Errorf("fcp: %s not applicable at %s", t.Name(), p)
	}
	cur := graphParam(g, "schedule.period_minutes", 60)
	carrier := g.MutableNode(scheduleCarrier(g))
	if carrier == nil {
		return Application{}, fmt.Errorf("fcp: %s: flow has no nodes", t.Name())
	}
	carrier.SetParam("schedule.period_minutes", formatFloat(cur/t.factor))
	return Application{Pattern: t.Name(), Point: p}, nil
}

// ---------------------------------------------------------------------
// UpgradeResources (P_G, improves performance)

type upgradeResources struct {
	costFactor float64
	speedup    float64
	conds      []Condition
}

// NewUpgradeResources builds the graph-wide pattern "management of the
// quality of Hw/Sw resources" (§2.2): every operation's processing costs are
// scaled by speedup (<1), while the monetary resource cost factor is
// multiplied by costFactor (>1).
func NewUpgradeResources(costFactor, speedup float64) Pattern {
	if costFactor <= 1 {
		costFactor = 2
	}
	if speedup <= 0 || speedup >= 1 {
		speedup = 0.6
	}
	return &upgradeResources{
		costFactor: costFactor,
		speedup:    speedup,
		conds: []Condition{
			GraphParamBelow("resources.cost_factor", 4, 1),
		},
	}
}

func (u *upgradeResources) Name() string                      { return NameUpgradeResources }
func (u *upgradeResources) Kind() PointKind                   { return GraphPoint }
func (u *upgradeResources) Improves() measures.Characteristic { return measures.Performance }
func (u *upgradeResources) Prerequisites() []Condition        { return u.conds }
func (u *upgradeResources) Fitness(g *etl.Graph, p Point) float64 {
	return 0.5
}

func (u *upgradeResources) Apply(g *etl.Graph, p Point) (Application, error) {
	if !Applicable(u, g, p) {
		return Application{}, fmt.Errorf("fcp: %s not applicable at %s", u.Name(), p)
	}
	cur := graphParam(g, "resources.cost_factor", 1)
	if scheduleCarrier(g) == "" {
		return Application{}, fmt.Errorf("fcp: %s: flow has no nodes", u.Name())
	}
	for _, id := range g.NodeIDs() {
		// MutableNode: the clone shares node values with its parent flow
		// until they are written (copy-on-write).
		n := g.MutableNode(id)
		n.Cost.PerTuple *= u.speedup
		n.Cost.Startup *= u.speedup
	}
	carrier := g.MutableNode(scheduleCarrier(g))
	carrier.SetParam("resources.cost_factor", formatFloat(cur*u.costFactor))
	return Application{Pattern: u.Name(), Point: p}, nil
}

// scheduleCarrier picks the deterministic node that carries graph-wide
// parameters: the first source, falling back to the first node. It returns
// the node's ID so callers can decide between read-only access and a
// copy-on-write MutableNode.
func scheduleCarrier(g *etl.Graph) etl.NodeID {
	if srcs := g.Sources(); len(srcs) > 0 {
		return srcs[0].ID
	}
	if ns := g.Nodes(); len(ns) > 0 {
		return ns[0].ID
	}
	return ""
}

func formatFloat(f float64) string {
	// Fixed 4-decimal rendering keeps params canonical for fingerprinting.
	return fmt.Sprintf("%.4f", f)
}
