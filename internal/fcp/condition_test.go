package fcp

import (
	"testing"

	"poiesis/internal/etl"
)

func TestConditionsRejectWrongPointKinds(t *testing.T) {
	g := purchasesFlow(t)
	nodeOnly := []Condition{
		NodeKindIn(etl.OpDerive),
		NodeNotGenerated(),
		NodeComplexityAtLeast(0.1),
	}
	for _, c := range nodeOnly {
		if c.Holds(g, AtEdge("src", "flt")) {
			t.Errorf("%s should reject edge points", c.Name())
		}
		if c.Holds(g, AtGraph()) {
			t.Errorf("%s should reject the graph point", c.Name())
		}
	}
	edgeOnly := []Condition{
		NoCheckpointWithin(2),
		NoAdjacentKind(etl.OpDedup),
		EdgeEndpointsNotGenerated(),
	}
	for _, c := range edgeOnly {
		if c.Holds(g, AtNode("drv")) {
			t.Errorf("%s should reject node points", c.Name())
		}
	}
	graphOnly := []Condition{
		GraphParamBelow("x", 10, 0),
		GraphParamAbove("x", -1, 0),
	}
	for _, c := range graphOnly {
		if c.Holds(g, AtNode("drv")) || c.Holds(g, AtEdge("src", "flt")) {
			t.Errorf("%s should only hold on the graph point", c.Name())
		}
	}
}

func TestGraphParamConditions(t *testing.T) {
	g := purchasesFlow(t)
	// Default value used when no node carries the parameter.
	if !GraphParamBelow("resources.cost_factor", 2, 1).Holds(g, AtGraph()) {
		t.Error("default 1 < 2 should hold")
	}
	if GraphParamBelow("resources.cost_factor", 1, 1).Holds(g, AtGraph()) {
		t.Error("1 < 1 should not hold")
	}
	g.Node("src").SetParam("resources.cost_factor", "3")
	if GraphParamBelow("resources.cost_factor", 2, 1).Holds(g, AtGraph()) {
		t.Error("3 < 2 should not hold")
	}
	if !GraphParamAbove("resources.cost_factor", 2, 1).Holds(g, AtGraph()) {
		t.Error("3 > 2 should hold")
	}
	// Unparseable values fall back to the default.
	g2 := purchasesFlow(t)
	g2.Node("src").SetParam("schedule.period_minutes", "sixty")
	if got := graphParam(g2, "schedule.period_minutes", 60); got != 60 {
		t.Errorf("unparseable param = %f", got)
	}
}

func TestParseFloatCases(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"60", 60, true},
		{"7.5", 7.5, true},
		{"0.125", 0.125, true},
		{"", 0, false},
		{"x", 0, false},
		{"1.2.3", 0, false},
		{"-1", 0, false}, // negatives unsupported by design
	}
	for _, c := range cases {
		got, ok := parseFloat(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("parseFloat(%q) = %f, %v", c.in, got, ok)
		}
	}
}

func TestNodeComplexityThreshold(t *testing.T) {
	g := purchasesFlow(t) // drv has PerTuple 0.05, dominant
	if !NodeComplexityAtLeast(0.9).Holds(g, AtNode("drv")) {
		t.Error("dominant node should pass a high threshold")
	}
	if NodeComplexityAtLeast(0.9).Holds(g, AtNode("prj")) {
		t.Error("cheap node should fail a high threshold")
	}
	if NodeComplexityAtLeast(0.5).Holds(g, AtNode("missing")) {
		t.Error("missing node should fail")
	}
}

func TestMaxComplexityEmptyGraph(t *testing.T) {
	if got := maxComplexity(etl.New("empty")); got != 0 {
		t.Errorf("empty graph max complexity = %f", got)
	}
}

func TestUpstreamSchemaOnGraphPoint(t *testing.T) {
	g := purchasesFlow(t)
	if !AtGraph().UpstreamSchema(g).IsEmpty() {
		t.Error("graph point has no upstream schema")
	}
	if AtGraph().UpstreamDistance(g) != 0 {
		t.Error("graph point distance should be 0")
	}
}

func TestApplicableRejectsWrongKind(t *testing.T) {
	g := purchasesFlow(t)
	edgePat := NewFilterNullValues()
	if Applicable(edgePat, g, AtNode("drv")) {
		t.Error("edge pattern must reject node points")
	}
	nodePat := NewParallelizeTask(2)
	if Applicable(nodePat, g, AtEdge("src", "flt")) {
		t.Error("node pattern must reject edge points")
	}
	graphPat := NewUpgradeResources(2, 0.5)
	if Applicable(graphPat, g, AtNode("drv")) {
		t.Error("graph pattern must reject node points")
	}
	// Invalid point.
	if Applicable(edgePat, g, AtEdge("zz", "qq")) {
		t.Error("invalid point must be rejected")
	}
}

func TestPointKindString(t *testing.T) {
	if NodePoint.String() != "node" || EdgePoint.String() != "edge" || GraphPoint.String() != "graph" {
		t.Error("point kind names wrong")
	}
	if PointKind(9).String() != "invalid" {
		t.Error("invalid kind name")
	}
	if (Point{Kind: PointKind(9)}).String() != "invalid" {
		t.Error("invalid point string")
	}
	if (Point{Kind: PointKind(9)}).Valid(purchasesFlow(t)) {
		t.Error("invalid point kind should not validate")
	}
}

func TestCustomPatternUniformFitness(t *testing.T) {
	pat, err := NewCustomPattern(CustomSpec{
		Name:     "Uniform",
		Kind:     EdgePoint,
		Improves: "performance",
		OpKind:   etl.OpNoop,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := purchasesFlow(t)
	f1 := pat.Fitness(g, AtEdge("src", "flt"))
	f2 := pat.Fitness(g, AtEdge("drv", "ld3"))
	if f1 != 0.5 || f2 != 0.5 {
		t.Errorf("uniform fitness = %f, %f", f1, f2)
	}
}
