package fcp

import (
	"fmt"

	"poiesis/internal/etl"
	"poiesis/internal/measures"
)

// CustomSpec declares a user-defined Flow Component Pattern (demo part P3:
// "users will be guided through defining their own Flow Component Patterns
// ... by extending and pre-configuring the existing ones"). Edge-kind custom
// patterns interpose a single configured operation; graph-kind custom
// patterns set graph-wide parameters.
type CustomSpec struct {
	// Name is the palette name; must be unique in the registry.
	Name string
	// Kind selects the application-point class (NodePoint is not supported
	// for declarative specs; write a Pattern implementation for structural
	// node rewrites).
	Kind PointKind
	// Improves is the targeted quality characteristic.
	Improves measures.Characteristic

	// OpKind and OpName configure the interposed operation (EdgePoint).
	OpKind etl.OpKind
	OpName string
	// Params are copied onto the interposed operation (EdgePoint) or set as
	// graph-wide parameters on the carrier node (GraphPoint).
	Params map[string]string
	// Cost overrides the default cost model of the interposed operation.
	Cost *etl.Cost
	// Parallelism of the interposed operation (default 1).
	Parallelism int

	// Conditions are the conjunctive prerequisites; nil means
	// always-applicable (subject to structural point validity).
	Conditions []Condition

	// FitnessNearSource ranks points near data sources higher when true;
	// otherwise fitness is uniform.
	FitnessNearSource bool
}

type customPattern struct {
	spec CustomSpec
}

// NewCustomPattern validates a spec and returns the pattern.
func NewCustomPattern(spec CustomSpec) (Pattern, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("fcp: custom pattern needs a name")
	}
	switch spec.Kind {
	case EdgePoint:
		if spec.OpKind == etl.OpUnknown {
			return nil, fmt.Errorf("fcp: custom edge pattern %q needs an operation kind", spec.Name)
		}
		if spec.OpKind.IsSource() || spec.OpKind.IsSink() {
			return nil, fmt.Errorf("fcp: custom edge pattern %q cannot interpose a source/sink", spec.Name)
		}
	case GraphPoint:
		if len(spec.Params) == 0 {
			return nil, fmt.Errorf("fcp: custom graph pattern %q needs parameters to set", spec.Name)
		}
	default:
		return nil, fmt.Errorf("fcp: custom pattern %q: unsupported kind %s", spec.Name, spec.Kind)
	}
	if spec.Improves == "" {
		return nil, fmt.Errorf("fcp: custom pattern %q needs a target characteristic", spec.Name)
	}
	if spec.OpName == "" {
		spec.OpName = spec.Name
	}
	if spec.Parallelism < 1 {
		spec.Parallelism = 1
	}
	return &customPattern{spec: spec}, nil
}

func (c *customPattern) Name() string                      { return c.spec.Name }
func (c *customPattern) Kind() PointKind                   { return c.spec.Kind }
func (c *customPattern) Improves() measures.Characteristic { return c.spec.Improves }
func (c *customPattern) Prerequisites() []Condition        { return c.spec.Conditions }

func (c *customPattern) Fitness(g *etl.Graph, p Point) float64 {
	if c.spec.FitnessNearSource {
		return nearSourceFitness(g, p)
	}
	return 0.5
}

func (c *customPattern) Apply(g *etl.Graph, p Point) (Application, error) {
	if !Applicable(c, g, p) {
		return Application{}, fmt.Errorf("fcp: %s not applicable at %s", c.Name(), p)
	}
	switch c.spec.Kind {
	case EdgePoint:
		up := p.UpstreamSchema(g)
		n := etl.NewNode(g.FreshID("cus"), c.spec.OpName, c.spec.OpKind, up.Clone())
		n.PatternName = c.spec.Name
		n.Parallelism = c.spec.Parallelism
		for k, v := range c.spec.Params {
			n.SetParam(k, v)
		}
		if c.spec.Cost != nil {
			n.Cost = *c.spec.Cost
		}
		if err := g.InsertOnEdge(p.Edge.From, p.Edge.To, n); err != nil {
			return Application{}, err
		}
		return Application{Pattern: c.Name(), Point: p, Added: []etl.NodeID{n.ID}}, nil

	case GraphPoint:
		carrier := g.MutableNode(scheduleCarrier(g))
		if carrier == nil {
			return Application{}, fmt.Errorf("fcp: %s: flow has no nodes", c.Name())
		}
		for k, v := range c.spec.Params {
			carrier.SetParam(k, v)
		}
		return Application{Pattern: c.Name(), Point: p}, nil
	}
	return Application{}, fmt.Errorf("fcp: %s: unsupported kind", c.Name())
}
