package fcp

import (
	"fmt"

	"poiesis/internal/etl"
)

// Condition is one applicability prerequisite of a pattern. "Each FCP is
// related to a particular set of prerequisites that have to be satisfied
// conjunctively to determine a valid application point" (§3).
type Condition interface {
	// Name identifies the condition in diagnostics.
	Name() string
	// Holds evaluates the condition against a flow and a candidate point.
	Holds(g *etl.Graph, p Point) bool
}

// condFunc adapts a function to the Condition interface.
type condFunc struct {
	name string
	fn   func(g *etl.Graph, p Point) bool
}

func (c condFunc) Name() string                     { return c.name }
func (c condFunc) Holds(g *etl.Graph, p Point) bool { return c.fn(g, p) }

// Cond builds a Condition from a name and a predicate. Custom patterns (P3)
// use it to declare their own prerequisites.
func Cond(name string, fn func(g *etl.Graph, p Point) bool) Condition {
	return condFunc{name: name, fn: fn}
}

// SchemaHasNullable requires the schema flowing into the point to contain at
// least one nullable attribute (prerequisite of FilterNullValues: there must
// be something to filter).
func SchemaHasNullable() Condition {
	return Cond("schema_has_nullable", func(g *etl.Graph, p Point) bool {
		return p.UpstreamSchema(g).HasNullable()
	})
}

// SchemaHasKey requires key attributes in the upstream schema (prerequisite
// of duplicate removal and crosschecking, which match rows by key).
func SchemaHasKey() Condition {
	return Cond("schema_has_key", func(g *etl.Graph, p Point) bool {
		return p.UpstreamSchema(g).HasKey()
	})
}

// SchemaHasNumeric requires numeric fields in the upstream schema — the
// paper's example prerequisite: "the presence or not of specific data types
// in the operation schemata (e.g., numeric fields in the output schema of
// preceding operator)".
func SchemaHasNumeric() Condition {
	return Cond("schema_has_numeric", func(g *etl.Graph, p Point) bool {
		return p.UpstreamSchema(g).HasNumeric()
	})
}

// NodeKindIn requires the point's node to be one of the given kinds.
func NodeKindIn(kinds ...etl.OpKind) Condition {
	set := map[etl.OpKind]bool{}
	for _, k := range kinds {
		set[k] = true
	}
	return Cond("node_kind_in", func(g *etl.Graph, p Point) bool {
		if p.Kind != NodePoint {
			return false
		}
		n := g.Node(p.Node)
		return n != nil && set[n.Kind]
	})
}

// NodeNotGenerated rejects nodes that a previous pattern application
// introduced, preventing patterns from stacking onto pattern plumbing.
func NodeNotGenerated() Condition {
	return Cond("node_not_generated", func(g *etl.Graph, p Point) bool {
		if p.Kind != NodePoint {
			return false
		}
		n := g.Node(p.Node)
		return n != nil && !n.Generated
	})
}

// NodeComplexityAtLeast requires the node's static complexity to reach a
// fraction of the flow's maximum: parallelising or checkpointing trivial
// operations is valid but pointless, so patterns gate on it.
func NodeComplexityAtLeast(fraction float64) Condition {
	name := fmt.Sprintf("node_complexity_at_least_%.2f", fraction)
	return Cond(name, func(g *etl.Graph, p Point) bool {
		if p.Kind != NodePoint {
			return false
		}
		n := g.Node(p.Node)
		if n == nil {
			return false
		}
		max := maxComplexity(g)
		if max <= 0 {
			return false
		}
		return n.Complexity() >= fraction*max
	})
}

// NoCheckpointWithin rejects edge points that already have a savepoint
// within the given number of hops up- or downstream, keeping checkpoints
// from stacking.
func NoCheckpointWithin(hops int) Condition {
	name := fmt.Sprintf("no_checkpoint_within_%d", hops)
	return Cond(name, func(g *etl.Graph, p Point) bool {
		if p.Kind != EdgePoint {
			return false
		}
		return g.UpstreamCheckpointFree(p.Edge.From, hops) &&
			g.DownstreamCheckpointFree(p.Edge.From, hops) &&
			g.DownstreamCheckpointFree(p.Edge.To, hops)
	})
}

// UpstreamDistanceAtMost keeps a pattern near the data sources (the cleaning
// heuristic's strict form, used by CrosscheckSources which needs access to
// the original source).
func UpstreamDistanceAtMost(k int) Condition {
	name := fmt.Sprintf("upstream_distance_at_most_%d", k)
	return Cond(name, func(g *etl.Graph, p Point) bool {
		return p.UpstreamDistance(g) <= k
	})
}

// NoAdjacentKind rejects edge points whose endpoints already are operations
// of the given kind: inserting a second identical cleaner next to an
// existing one adds cost without benefit.
func NoAdjacentKind(kind etl.OpKind) Condition {
	return Cond("no_adjacent_"+kind.String(), func(g *etl.Graph, p Point) bool {
		if p.Kind != EdgePoint {
			return false
		}
		return g.Node(p.Edge.From).Kind != kind && g.Node(p.Edge.To).Kind != kind
	})
}

// EdgeEndpointsNotGenerated rejects edges that touch pattern plumbing, so
// iterated generation grows linearly rather than recursively into generated
// scaffolding.
func EdgeEndpointsNotGenerated() Condition {
	return Cond("edge_endpoints_not_generated", func(g *etl.Graph, p Point) bool {
		if p.Kind != EdgePoint {
			return false
		}
		return !g.Node(p.Edge.From).Generated && !g.Node(p.Edge.To).Generated
	})
}

// GraphParamBelow reads a float parameter from any node (graph-wide
// convention) and requires it below the bound; absent parameters count as
// def.
func GraphParamBelow(param string, bound, def float64) Condition {
	return Cond("graph_param_below_"+param, func(g *etl.Graph, p Point) bool {
		if p.Kind != GraphPoint {
			return false
		}
		return graphParam(g, param, def) < bound
	})
}

// GraphParamAbove mirrors GraphParamBelow.
func GraphParamAbove(param string, bound, def float64) Condition {
	return Cond("graph_param_above_"+param, func(g *etl.Graph, p Point) bool {
		if p.Kind != GraphPoint {
			return false
		}
		return graphParam(g, param, def) > bound
	})
}

// graphParam scans nodes for a parameter used with graph-wide conventions.
func graphParam(g *etl.Graph, param string, def float64) float64 {
	for _, n := range g.Nodes() {
		if v := n.Param(param); v != "" {
			if f, ok := parseFloat(v); ok {
				return f
			}
		}
	}
	return def
}

func parseFloat(s string) (float64, bool) {
	var f, frac float64
	seenDot := false
	div := 1.0
	if s == "" {
		return 0, false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			if seenDot {
				div *= 10
				frac += float64(c-'0') / div
			} else {
				f = f*10 + float64(c-'0')
			}
		case c == '.' && !seenDot:
			seenDot = true
		default:
			return 0, false
		}
	}
	return f + frac, true
}

// maxComplexity returns the largest static complexity over the flow's
// non-generated nodes.
func maxComplexity(g *etl.Graph) float64 {
	max := 0.0
	for _, n := range g.Nodes() {
		if c := n.Complexity(); c > max {
			max = c
		}
	}
	return max
}

// All evaluates the conjunction of conditions, returning the first violated
// condition's name for diagnostics.
func All(g *etl.Graph, p Point, conds []Condition) (bool, string) {
	for _, c := range conds {
		if !c.Holds(g, p) {
			return false, c.Name()
		}
	}
	return true, ""
}
