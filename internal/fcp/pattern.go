package fcp

import (
	"fmt"
	"sort"

	"poiesis/internal/etl"
	"poiesis/internal/measures"
)

// Pattern is one Flow Component Pattern. Implementations must be stateless
// and safe for concurrent use: the Planner applies the same pattern to many
// flow clones from a worker pool.
type Pattern interface {
	// Name is the unique palette name (Fig. 6 left column).
	Name() string
	// Kind is the application-point class the pattern binds to.
	Kind() PointKind
	// Improves is the quality characteristic the pattern is intended to
	// improve (Fig. 6 right column).
	Improves() measures.Characteristic
	// Prerequisites are the conjunctive applicability conditions.
	Prerequisites() []Condition
	// Fitness ranks a valid application point in [0,1]; deployment policies
	// use it to prioritise placements ("heuristics to determine the fitness
	// of FCPs for different parts of the ETL flow").
	Fitness(g *etl.Graph, p Point) float64
	// Apply weaves the pattern into the flow at the point, mutating g, and
	// returns the record of what was added. Callers clone first.
	Apply(g *etl.Graph, p Point) (Application, error)
}

// Applicable reports whether every prerequisite of the pattern holds at the
// point (and that the point is structurally valid and of the right kind).
func Applicable(pat Pattern, g *etl.Graph, p Point) bool {
	if p.Kind != pat.Kind() || !p.Valid(g) {
		return false
	}
	ok, _ := All(g, p, pat.Prerequisites())
	return ok
}

// ApplicationPoints enumerates every valid application point of the pattern
// on the flow, in deterministic order. "As opposed to manual deployment, our
// tool guarantees that all of the potential application points on the ETL
// flow are checked for each FCP."
func ApplicationPoints(pat Pattern, g *etl.Graph) []Point {
	var candidates []Point
	switch pat.Kind() {
	case NodePoint:
		for _, id := range g.NodeIDs() {
			candidates = append(candidates, AtNode(id))
		}
	case EdgePoint:
		for _, e := range g.Edges() {
			candidates = append(candidates, AtEdge(e.From, e.To))
		}
	case GraphPoint:
		candidates = append(candidates, AtGraph())
	}
	var out []Point
	for _, p := range candidates {
		if Applicable(pat, g, p) {
			out = append(out, p)
		}
	}
	return out
}

// RankedPoints returns the valid application points ordered by descending
// fitness (ties broken by point string for determinism).
func RankedPoints(pat Pattern, g *etl.Graph) []Point {
	pts := ApplicationPoints(pat, g)
	type scored struct {
		p Point
		f float64
	}
	ss := make([]scored, len(pts))
	for i, p := range pts {
		ss[i] = scored{p, pat.Fitness(g, p)}
	}
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].f != ss[j].f {
			return ss[i].f > ss[j].f
		}
		return ss[i].p.String() < ss[j].p.String()
	})
	for i, s := range ss {
		pts[i] = s.p
	}
	return pts
}

// Registry is the repository of available FCP models ("Utilizing an existing
// repository of FCP models, it generates patterns that are specific to the
// ETL flow on which they are applied"). Users extend it with custom patterns
// (demo part P3).
type Registry struct {
	byName map[string]Pattern
	names  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]Pattern{}}
}

// Register adds a pattern; re-registering a name fails.
func (r *Registry) Register(p Pattern) error {
	if p == nil || p.Name() == "" {
		return fmt.Errorf("fcp: registering unnamed pattern")
	}
	if _, ok := r.byName[p.Name()]; ok {
		return fmt.Errorf("fcp: pattern %q already registered", p.Name())
	}
	r.byName[p.Name()] = p
	r.names = append(r.names, p.Name())
	return nil
}

// MustRegister panics on registration failure; used for the builtin palette.
func (r *Registry) MustRegister(p Pattern) {
	if err := r.Register(p); err != nil {
		panic(err)
	}
}

// Get returns the named pattern.
func (r *Registry) Get(name string) (Pattern, bool) {
	p, ok := r.byName[name]
	return p, ok
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.names...)
}

// Palette resolves names to patterns; with no names it returns the full
// registry in registration order. This is the user's "palette of patterns to
// be added to the flow" (P2 lets the user choose a subset).
func (r *Registry) Palette(names ...string) ([]Pattern, error) {
	if len(names) == 0 {
		names = r.names
	}
	out := make([]Pattern, 0, len(names))
	for _, n := range names {
		p, ok := r.byName[n]
		if !ok {
			return nil, fmt.Errorf("fcp: unknown pattern %q", n)
		}
		out = append(out, p)
	}
	return out, nil
}

// Builtin palette names (Fig. 6).
const (
	NameRemoveDuplicateEntries = "RemoveDuplicateEntries"
	NameFilterNullValues       = "FilterNullValues"
	NameCrosscheckSources      = "CrosscheckSources"
	NameParallelizeTask        = "ParallelizeTask"
	NameAddCheckpoint          = "AddCheckpoint"
	NameTuneRecurrence         = "TuneRecurrenceFrequency"
	NameUpgradeResources       = "UpgradeResources"
)

// DefaultRegistry returns a registry holding the Fig. 6 palette plus the
// §2.2 graph-wide management patterns.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	r.MustRegister(NewRemoveDuplicateEntries())
	r.MustRegister(NewFilterNullValues())
	r.MustRegister(NewCrosscheckSources())
	r.MustRegister(NewParallelizeTask(4))
	r.MustRegister(NewAddCheckpoint(2))
	r.MustRegister(NewTuneRecurrenceFrequency(2))
	r.MustRegister(NewUpgradeResources(2, 0.6))
	return r
}
