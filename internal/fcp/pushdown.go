package fcp

import (
	"fmt"

	"poiesis/internal/etl"
	"poiesis/internal/measures"
)

// NamePushDownSelection is the palette name of the selection push-down
// optimization pattern.
const NamePushDownSelection = "PushDownSelection"

// pushDownSelection is an optimization pattern beyond the Fig. 6 palette
// (the paper's introduction calls out "wrong placement of optimization
// patterns" as a common manual mistake): a row-reducing filter is reordered
// before its expensive single-input predecessor, so the predecessor
// processes fewer rows. The flow's functionality is preserved — the filter's
// predicate attributes must already exist before the predecessor, which the
// prerequisites check.
type pushDownSelection struct {
	conds []Condition
}

// NewPushDownSelection builds the selection push-down pattern.
func NewPushDownSelection() Pattern {
	p := &pushDownSelection{}
	p.conds = []Condition{
		NodeKindIn(etl.OpFilter, etl.OpFilterNull, etl.OpDedup),
		NodeNotGenerated(),
		Cond("swap_feasible", p.feasible),
	}
	return p
}

// feasible checks the structural and schema requirements of the swap: the
// filter and its predecessor form a single-in/single-out chain, the
// predecessor is an expensive row-level transformation, and every attribute
// the filter passes through already exists on the predecessor's input (so
// the predicate can be evaluated earlier).
func (p *pushDownSelection) feasible(g *etl.Graph, pt Point) bool {
	if pt.Kind != NodePoint {
		return false
	}
	n := g.Node(pt.Node)
	if n == nil {
		return false
	}
	preds := g.Pred(pt.Node)
	succs := g.Succ(pt.Node)
	if len(preds) != 1 || len(succs) != 1 {
		return false
	}
	prev := g.Node(preds[0])
	switch prev.Kind {
	case etl.OpDerive, etl.OpConvert, etl.OpSurrogate, etl.OpEncrypt:
		// Row-level transformations worth skipping rows for.
	default:
		return false
	}
	if prev.Generated {
		return false
	}
	if len(g.Pred(prev.ID)) != 1 || len(g.Succ(prev.ID)) != 1 {
		return false
	}
	// Only beneficial when the predecessor is costlier per tuple than the
	// filter itself.
	if prev.Cost.PerTuple <= n.Cost.PerTuple {
		return false
	}
	// Schema feasibility: the filter's output attributes must all be
	// available before the predecessor runs.
	before := g.InputSchema(prev.ID)
	for _, a := range n.Out.Attrs {
		got, ok := before.Attr(a.Name)
		if !ok || got.Type != a.Type {
			return false
		}
	}
	return true
}

func (p *pushDownSelection) Name() string                      { return NamePushDownSelection }
func (p *pushDownSelection) Kind() PointKind                   { return NodePoint }
func (p *pushDownSelection) Improves() measures.Characteristic { return measures.Performance }
func (p *pushDownSelection) Prerequisites() []Condition        { return p.conds }

// Fitness prefers pushing past the most expensive predecessors, weighted by
// how selective the filter is (more rows removed, more work saved).
func (p *pushDownSelection) Fitness(g *etl.Graph, pt Point) float64 {
	n := g.Node(pt.Node)
	preds := g.Pred(pt.Node)
	if n == nil || len(preds) != 1 {
		return 0
	}
	prev := g.Node(preds[0])
	max := maxComplexity(g)
	if max <= 0 {
		return 0
	}
	saved := (1 - n.Cost.Selectivity) * prev.Complexity() / max
	if saved < 0 {
		saved = 0
	}
	if saved > 1 {
		saved = 1
	}
	return saved
}

func (p *pushDownSelection) Apply(g *etl.Graph, pt Point) (Application, error) {
	if !Applicable(p, g, pt) {
		return Application{}, fmt.Errorf("fcp: %s not applicable at %s", p.Name(), pt)
	}
	preds := g.Pred(pt.Node)
	if err := g.SwapWithPredecessor(pt.Node); err != nil {
		return Application{}, err
	}
	// MutableNode: both reordered operations are edited in place and may be
	// shared with the parent flow (copy-on-write clones).
	n := g.MutableNode(pt.Node)
	prev := g.MutableNode(preds[0])
	// After the swap the filter consumes the predecessor's former input;
	// its output schema narrows accordingly (pass-through semantics), and
	// the predecessor's output is unchanged.
	n.Out = g.InputSchema(n.ID).Clone()
	// Record provenance without marking the moved nodes Generated (they are
	// original operations, only reordered).
	n.SetParam("optimized.by", p.Name())
	prev.SetParam("optimized.peer", string(n.ID))
	return Application{Pattern: p.Name(), Point: pt}, nil
}
