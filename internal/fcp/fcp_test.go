package fcp

import (
	"testing"

	"poiesis/internal/etl"
	"poiesis/internal/measures"
)

// purchasesFlow mirrors the initial flow of Fig. 2: filter -> split into two
// branches, one with a heavy DERIVE VALUES, the other with partition-derive-
// merge plumbing already abstracted as plain derives.
func purchasesFlow(t testing.TB) *etl.Graph {
	t.Helper()
	s := etl.NewSchema(
		etl.Attribute{Name: "purchase_id", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "item_id", Type: etl.TypeInt},
		etl.Attribute{Name: "amount", Type: etl.TypeFloat},
		etl.Attribute{Name: "note", Type: etl.TypeString, Nullable: true},
	)
	derived := s.With(etl.Attribute{Name: "value", Type: etl.TypeFloat})
	g := etl.New("purchases")
	g.MustAddNode(etl.NewNode("src", "S_Purchases", etl.OpExtract, s))
	g.MustAddNode(etl.NewNode("flt", "filter_current", etl.OpFilter, s))
	g.MustAddNode(etl.NewNode("spl", "split_required_attributes", etl.OpSplit, s))
	g.MustAddNode(etl.NewNode("drv", "derive_values", etl.OpDerive, derived))
	g.MustAddNode(etl.NewNode("prj", "project_required", etl.OpProject, s.Project("purchase_id", "amount")))
	g.MustAddNode(etl.NewNode("ld3", "S_Purchases_3", etl.OpLoad, etl.Schema{}))
	g.MustAddNode(etl.NewNode("ld4", "S_Purchases_4", etl.OpLoad, etl.Schema{}))
	g.MustAddEdge("src", "flt")
	g.MustAddEdge("flt", "spl")
	g.MustAddEdge("spl", "drv")
	g.MustAddEdge("spl", "prj")
	g.MustAddEdge("drv", "ld3")
	g.MustAddEdge("prj", "ld4")
	// Make the derive dominant, as in the paper's computational-intensive
	// task.
	g.Node("drv").Cost.PerTuple = 0.05
	if err := g.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return g
}

func TestDefaultRegistryPalette(t *testing.T) {
	r := DefaultRegistry()
	// Fig. 6 palette plus the two graph-wide management patterns.
	want := []string{
		NameRemoveDuplicateEntries, NameFilterNullValues, NameCrosscheckSources,
		NameParallelizeTask, NameAddCheckpoint, NameTuneRecurrence, NameUpgradeResources,
	}
	names := r.Names()
	if len(names) != len(want) {
		t.Fatalf("registry has %d patterns: %v", len(names), names)
	}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("names[%d] = %s, want %s", i, names[i], w)
		}
	}
	// Fig. 6 characteristic mapping.
	improves := map[string]measures.Characteristic{
		NameRemoveDuplicateEntries: measures.DataQuality,
		NameFilterNullValues:       measures.DataQuality,
		NameCrosscheckSources:      measures.DataQuality,
		NameParallelizeTask:        measures.Performance,
		NameAddCheckpoint:          measures.Reliability,
	}
	for name, char := range improves {
		p, ok := r.Get(name)
		if !ok {
			t.Fatalf("pattern %s missing", name)
		}
		if p.Improves() != char {
			t.Errorf("%s improves %s, want %s", name, p.Improves(), char)
		}
	}
}

func TestRegistryErrors(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(nil); err == nil {
		t.Error("nil pattern should fail")
	}
	p := NewFilterNullValues()
	if err := r.Register(p); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(p); err == nil {
		t.Error("duplicate registration should fail")
	}
	if _, err := r.Palette("nope"); err == nil {
		t.Error("unknown palette name should fail")
	}
	pal, err := r.Palette()
	if err != nil || len(pal) != 1 {
		t.Errorf("default palette: %v, %v", pal, err)
	}
}

func TestFilterNullValuesApplication(t *testing.T) {
	g := purchasesFlow(t)
	pat := NewFilterNullValues()
	pts := ApplicationPoints(pat, g)
	if len(pts) == 0 {
		t.Fatal("no application points for FilterNullValues")
	}
	// Nullable attribute flows on every edge before the project.
	for _, p := range pts {
		if p.Kind != EdgePoint {
			t.Errorf("point kind %s", p.Kind)
		}
	}
	g2 := g.Clone()
	app, err := pat.Apply(g2, pts[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Added) != 1 {
		t.Fatalf("added = %v", app.Added)
	}
	n := g2.Node(app.Added[0])
	if n.Kind != etl.OpFilterNull || !n.Generated || n.PatternName != NameFilterNullValues {
		t.Errorf("inserted node %+v", n)
	}
	if err := g2.Validate(); err != nil {
		t.Errorf("flow invalid after application: %v", err)
	}
	// Original flow untouched.
	if g.GeneratedCount() != 0 {
		t.Error("Apply mutated the original")
	}
}

func TestFilterNullValuesPrerequisite(t *testing.T) {
	// A flow without nullable attributes offers no application points.
	s := etl.NewSchema(etl.Attribute{Name: "id", Type: etl.TypeInt, Key: true})
	g := etl.NewBuilder("nonnull").
		Op("src", "S", etl.OpExtract, s).
		Op("ld", "DW", etl.OpLoad, etl.Schema{}).
		MustBuild()
	if pts := ApplicationPoints(NewFilterNullValues(), g); len(pts) != 0 {
		t.Errorf("expected no points, got %v", pts)
	}
}

func TestNoAdjacentStacking(t *testing.T) {
	g := purchasesFlow(t)
	pat := NewFilterNullValues()
	g2 := g.Clone()
	pts := ApplicationPoints(pat, g2)
	if _, err := pat.Apply(g2, pts[0]); err != nil {
		t.Fatal(err)
	}
	// The edges created around the new filter must not admit another
	// FilterNullValues right next to it.
	for _, p := range ApplicationPoints(pat, g2) {
		if g2.Node(p.Edge.From).Kind == etl.OpFilterNull || g2.Node(p.Edge.To).Kind == etl.OpFilterNull {
			t.Errorf("point %s stacks onto an existing null filter", p)
		}
	}
}

func TestRemoveDuplicateEntriesApplication(t *testing.T) {
	g := purchasesFlow(t)
	pat := NewRemoveDuplicateEntries()
	pts := ApplicationPoints(pat, g)
	if len(pts) == 0 {
		t.Fatal("no points for RemoveDuplicateEntries")
	}
	g2 := g.Clone()
	app, err := pat.Apply(g2, pts[0])
	if err != nil {
		t.Fatal(err)
	}
	if g2.Node(app.Added[0]).Kind != etl.OpDedup {
		t.Error("wrong operation kind")
	}
	if err := g2.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCrosscheckSourcesApplication(t *testing.T) {
	g := purchasesFlow(t)
	pat := NewCrosscheckSources()
	pts := ApplicationPoints(pat, g)
	if len(pts) == 0 {
		t.Fatal("no points for CrosscheckSources")
	}
	// Prerequisite: near the source only (distance <= 2).
	for _, p := range pts {
		if d := p.UpstreamDistance(g); d > 2 {
			t.Errorf("point %s at distance %d", p, d)
		}
	}
	g2 := g.Clone()
	app, err := pat.Apply(g2, pts[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Added) != 2 {
		t.Fatalf("crosscheck should add the check and the alternative source: %v", app.Added)
	}
	if err := g2.Validate(); err != nil {
		t.Errorf("invalid after crosscheck: %v\n%s", err, g2)
	}
	// One more extract (the alternative source) must exist.
	if len(g2.Sources()) != len(g.Sources())+1 {
		t.Error("alternative source not added")
	}
}

func TestParallelizeTaskApplication(t *testing.T) {
	g := purchasesFlow(t)
	pat := NewParallelizeTask(4)
	pts := ApplicationPoints(pat, g)
	if len(pts) != 1 {
		t.Fatalf("expected exactly the heavy derive as point, got %v", pts)
	}
	if pts[0].Node != "drv" {
		t.Errorf("point = %s", pts[0])
	}
	g2 := g.Clone()
	app, err := pat.Apply(g2, pts[0])
	if err != nil {
		t.Fatal(err)
	}
	// partition + merge + 4 copies
	if len(app.Added) != 6 {
		t.Errorf("added %d nodes", len(app.Added))
	}
	if g2.Node("drv") != nil {
		t.Error("original task should be replaced")
	}
	if err := g2.Validate(); err != nil {
		t.Errorf("invalid after parallelize: %v\n%s", err, g2)
	}
	// Structure check: a partition fans out to 4 derive copies into a merge.
	var part, mrg etl.NodeID
	for _, n := range g2.Nodes() {
		switch n.Kind {
		case etl.OpPartition:
			part = n.ID
		case etl.OpMerge:
			mrg = n.ID
		}
	}
	if g2.OutDegree(part) != 4 || g2.InDegree(mrg) != 4 {
		t.Errorf("fan-out %d, fan-in %d", g2.OutDegree(part), g2.InDegree(mrg))
	}
	if g2.MergeCount() == 0 {
		t.Error("manageability should see the new merge element")
	}
}

func TestParallelizeTaskNotReappliedToCopies(t *testing.T) {
	g := purchasesFlow(t)
	pat := NewParallelizeTask(2)
	g2 := g.Clone()
	if _, err := pat.Apply(g2, AtNode("drv")); err != nil {
		t.Fatal(err)
	}
	// Copies are Generated, so no further node points exist.
	if pts := ApplicationPoints(pat, g2); len(pts) != 0 {
		t.Errorf("pattern reapplies to its own copies: %v", pts)
	}
}

func TestAddCheckpointApplication(t *testing.T) {
	g := purchasesFlow(t)
	pat := NewAddCheckpoint(2)
	pts := RankedPoints(pat, g)
	if len(pts) == 0 {
		t.Fatal("no checkpoint points")
	}
	// Heuristic: best point is after the most complex operation (drv).
	if pts[0].Edge.From != "drv" {
		t.Errorf("best checkpoint point is %s, want after drv", pts[0])
	}
	g2 := g.Clone()
	if _, err := pat.Apply(g2, pts[0]); err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err != nil {
		t.Error(err)
	}
	// After inserting, nearby edges lose eligibility (NoCheckpointWithin).
	for _, p := range ApplicationPoints(pat, g2) {
		if p.Edge.From == "drv" {
			t.Errorf("point %s should be blocked by the new savepoint", p)
		}
	}
}

func TestTuneRecurrenceFrequency(t *testing.T) {
	g := purchasesFlow(t)
	pat := NewTuneRecurrenceFrequency(2)
	pts := ApplicationPoints(pat, g)
	if len(pts) != 1 || pts[0].Kind != GraphPoint {
		t.Fatalf("points = %v", pts)
	}
	g2 := g.Clone()
	if _, err := pat.Apply(g2, pts[0]); err != nil {
		t.Fatal(err)
	}
	if got := graphParam(g2, "schedule.period_minutes", 60); got != 30 {
		t.Errorf("period = %f, want 30", got)
	}
	// Re-application keeps halving until the prerequisite (>10 min) stops it.
	if _, err := pat.Apply(g2, AtGraph()); err != nil {
		t.Fatal(err)
	}
	if got := graphParam(g2, "schedule.period_minutes", 60); got != 15 {
		t.Errorf("period = %f, want 15", got)
	}
	if _, err := pat.Apply(g2, AtGraph()); err != nil {
		t.Fatal(err)
	}
	// 7.5 <= 10: no more points.
	if pts := ApplicationPoints(pat, g2); len(pts) != 0 {
		t.Errorf("pattern applicable below minimum period: %v", pts)
	}
}

func TestUpgradeResources(t *testing.T) {
	g := purchasesFlow(t)
	pat := NewUpgradeResources(2, 0.5)
	g2 := g.Clone()
	before := g2.Node("drv").Cost.PerTuple
	if _, err := pat.Apply(g2, AtGraph()); err != nil {
		t.Fatal(err)
	}
	if got := g2.Node("drv").Cost.PerTuple; got != before*0.5 {
		t.Errorf("per-tuple cost = %f, want %f", got, before*0.5)
	}
	if got := graphParam(g2, "resources.cost_factor", 1); got != 2 {
		t.Errorf("cost factor = %f", got)
	}
	// Two more upgrades hit the factor<4 prerequisite after reaching 4.
	if _, err := pat.Apply(g2, AtGraph()); err != nil {
		t.Fatal(err)
	}
	if pts := ApplicationPoints(pat, g2); len(pts) != 0 {
		t.Errorf("upgrade applicable beyond cap: %v", pts)
	}
}

func TestApplyOnInvalidPointFails(t *testing.T) {
	g := purchasesFlow(t)
	if _, err := NewFilterNullValues().Apply(g, AtEdge("src", "ld3")); err == nil {
		t.Error("nonexistent edge should fail")
	}
	if _, err := NewParallelizeTask(2).Apply(g, AtNode("nope")); err == nil {
		t.Error("nonexistent node should fail")
	}
	if _, err := NewParallelizeTask(2).Apply(g, AtNode("flt")); err == nil {
		t.Error("filter is not a parallelisable kind")
	}
	// Wrong point class.
	if _, err := NewAddCheckpoint(2).Apply(g, AtGraph()); err == nil {
		t.Error("edge pattern on graph point should fail")
	}
}

func TestRankedPointsDeterministic(t *testing.T) {
	g := purchasesFlow(t)
	pat := NewFilterNullValues()
	first := RankedPoints(pat, g)
	for i := 0; i < 5; i++ {
		got := RankedPoints(pat, g)
		if len(got) != len(first) {
			t.Fatal("point count varies")
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatal("ranking not deterministic")
			}
		}
	}
	// Fitness ordering: earlier points are at least as close to the source.
	for i := 0; i+1 < len(first); i++ {
		if pat.Fitness(g, first[i]) < pat.Fitness(g, first[i+1]) {
			t.Error("ranked points not ordered by fitness")
		}
	}
}

func TestApplicationString(t *testing.T) {
	app := Application{Pattern: "X", Point: AtEdge("a", "b")}
	if got := app.String(); got != "X@edge:a->b" {
		t.Errorf("String = %q", got)
	}
	if got := AtGraph().String(); got != "graph" {
		t.Errorf("graph point = %q", got)
	}
	if got := AtNode("n").String(); got != "node:n" {
		t.Errorf("node point = %q", got)
	}
}

func TestConditionDiagnostics(t *testing.T) {
	g := purchasesFlow(t)
	ok, failed := All(g, AtEdge("src", "flt"), []Condition{
		SchemaHasNullable(),
		SchemaHasKey(),
	})
	if !ok || failed != "" {
		t.Errorf("conditions should hold: %v %q", ok, failed)
	}
	ok, failed = All(g, AtEdge("src", "flt"), []Condition{
		Cond("always_false", func(*etl.Graph, Point) bool { return false }),
	})
	if ok || failed != "always_false" {
		t.Errorf("diagnostics = %v %q", ok, failed)
	}
}

func TestPointHelpers(t *testing.T) {
	g := purchasesFlow(t)
	if !AtEdge("src", "flt").Valid(g) || AtEdge("flt", "src").Valid(g) {
		t.Error("edge validity misbehaves")
	}
	if !AtNode("drv").Valid(g) || AtNode("zz").Valid(g) {
		t.Error("node validity misbehaves")
	}
	if !AtGraph().Valid(g) {
		t.Error("graph point always valid")
	}
	up := AtEdge("src", "flt").UpstreamSchema(g)
	if !up.Has("purchase_id") {
		t.Errorf("upstream schema = %v", up)
	}
	if d := AtEdge("src", "flt").UpstreamDistance(g); d != 1 {
		t.Errorf("edge distance = %d", d)
	}
	if d := AtNode("src").UpstreamDistance(g); d != 0 {
		t.Errorf("source distance = %d", d)
	}
}

func TestCustomPatternEdge(t *testing.T) {
	// P3: a user-defined "EncryptStream" pattern improving security-like
	// cost... here mapped to data quality for the demo. It interposes an
	// encrypt operation near sources.
	spec := CustomSpec{
		Name:     "EncryptStream",
		Kind:     EdgePoint,
		Improves: measures.DataQuality,
		OpKind:   etl.OpEncrypt,
		OpName:   "encrypt_in_transit",
		Params:   map[string]string{"algo": "aes"},
		Conditions: []Condition{
			UpstreamDistanceAtMost(1),
			NoAdjacentKind(etl.OpEncrypt),
		},
		FitnessNearSource: true,
	}
	pat, err := NewCustomPattern(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := purchasesFlow(t)
	pts := ApplicationPoints(pat, g)
	if len(pts) != 1 {
		t.Fatalf("points = %v", pts)
	}
	g2 := g.Clone()
	app, err := pat.Apply(g2, pts[0])
	if err != nil {
		t.Fatal(err)
	}
	n := g2.Node(app.Added[0])
	if n.Kind != etl.OpEncrypt || n.Param("algo") != "aes" {
		t.Errorf("custom op = %+v", n)
	}
	if err := g2.Validate(); err != nil {
		t.Error(err)
	}
	// Registry extension.
	r := DefaultRegistry()
	if err := r.Register(pat); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("EncryptStream"); !ok {
		t.Error("custom pattern not in registry")
	}
}

func TestCustomPatternGraph(t *testing.T) {
	pat, err := NewCustomPattern(CustomSpec{
		Name:     "EnableRBAC",
		Kind:     GraphPoint,
		Improves: measures.Manageability,
		Params:   map[string]string{"security.rbac": "1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := purchasesFlow(t)
	g2 := g.Clone()
	if _, err := pat.Apply(g2, AtGraph()); err != nil {
		t.Fatal(err)
	}
	if graphParam(g2, "security.rbac", 0) != 1 {
		t.Error("graph param not set")
	}
}

func TestCustomPatternValidation(t *testing.T) {
	bad := []CustomSpec{
		{},
		{Name: "x", Kind: EdgePoint, Improves: measures.Cost},                        // no op kind
		{Name: "x", Kind: EdgePoint, Improves: measures.Cost, OpKind: etl.OpExtract}, // source
		{Name: "x", Kind: GraphPoint, Improves: measures.Cost},                       // no params
		{Name: "x", Kind: NodePoint, Improves: measures.Cost, OpKind: etl.OpNoop},    // node unsupported
		{Name: "x", Kind: EdgePoint, OpKind: etl.OpNoop},                             // no characteristic
	}
	for i, s := range bad {
		if _, err := NewCustomPattern(s); err == nil {
			t.Errorf("spec %d should fail validation", i)
		}
	}
}

func TestFingerprintDedupAcrossOrder(t *testing.T) {
	// Applying FilterNullValues on two distinct edges in either order gives
	// the same design; fingerprints must agree so the Planner deduplicates.
	g := purchasesFlow(t)
	pat := NewFilterNullValues()
	e1 := AtEdge("src", "flt")
	e2 := AtEdge("flt", "spl")

	a := g.Clone()
	if _, err := pat.Apply(a, e1); err != nil {
		t.Fatal(err)
	}
	if _, err := pat.Apply(a, AtEdge("flt", "spl")); err != nil {
		t.Fatal(err)
	}

	b := g.Clone()
	if _, err := pat.Apply(b, e2); err != nil {
		t.Fatal(err)
	}
	if _, err := pat.Apply(b, e1); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("order of independent applications changed the fingerprint")
	}
}
