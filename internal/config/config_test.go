package config

import (
	"testing"

	"poiesis/internal/core"
	"poiesis/internal/fcp"
	"poiesis/internal/measures"
	"poiesis/internal/policy"
	"poiesis/internal/tpcds"
)

const fullDoc = `{
  "palette": ["AddCheckpoint", "FilterNullValues"],
  "policy": "goal_driven",
  "topK": 5,
  "depth": 2,
  "maxAlternatives": 500,
  "goals": {"reliability": 2, "performance": 1},
  "dims": ["performance", "reliability"],
  "constraints": [
    {"characteristic": "performance", "measure": "process_cycle_time", "max": 100000},
    {"characteristic": "data_quality", "measure": "completeness", "min": 0.5},
    {"characteristic": "reliability", "minScore": 0.1}
  ],
  "customPatterns": [
    {"name": "EncryptNearSource", "kind": "edge", "improves": "manageability",
     "opKind": "encrypt", "nearSource": true, "maxSourceDistance": 1},
    {"name": "EnableRBAC", "kind": "graph", "improves": "manageability",
     "params": {"security.rbac": "1"}}
  ],
  "sim": {"defaultRows": 300, "runs": 16, "retryBudget": 4, "pipelineOverlap": 0.5, "seed": 9}
}`

func TestParseFullDocument(t *testing.T) {
	d, err := Parse([]byte(fullDoc))
	if err != nil {
		t.Fatal(err)
	}
	opts, err := d.Options()
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.Palette) != 2 || opts.Depth != 2 || opts.MaxAlternatives != 500 {
		t.Errorf("options = %+v", opts)
	}
	if _, ok := opts.Policy.(policy.GoalDriven); !ok {
		t.Errorf("policy = %T", opts.Policy)
	}
	if len(opts.Dims) != 2 || opts.Dims[0] != measures.Performance {
		t.Errorf("dims = %v", opts.Dims)
	}
	if len(opts.Constraints) != 3 {
		t.Errorf("constraints = %d", len(opts.Constraints))
	}
	if opts.Sim.DefaultRows != 300 || opts.Sim.Runs != 16 ||
		opts.Sim.RetryBudget != 4 || opts.Sim.Seed != 9 {
		t.Errorf("sim = %+v", opts.Sim)
	}
	goals, err := d.GoalSet()
	if err != nil {
		t.Fatal(err)
	}
	if goals.Weight(measures.Reliability) != 2 {
		t.Error("goal weights wrong")
	}
	reg, err := d.Registry()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get("EncryptNearSource"); !ok {
		t.Error("custom edge pattern missing")
	}
	if _, ok := reg.Get("EnableRBAC"); !ok {
		t.Error("custom graph pattern missing")
	}
}

func TestConfiguredPlannerRuns(t *testing.T) {
	d, err := Parse([]byte(fullDoc))
	if err != nil {
		t.Fatal(err)
	}
	opts, err := d.Options()
	if err != nil {
		t.Fatal(err)
	}
	reg, err := d.Registry()
	if err != nil {
		t.Fatal(err)
	}
	// End-to-end check: a configured plan actually runs.
	g := tpcds.PurchasesFlow()
	planner := core.NewPlanner(reg, opts)
	res, err := planner.Plan(g, tpcds.Binding(g, 300, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alternatives) == 0 {
		t.Error("configured planner produced nothing")
	}
	for _, a := range res.Alternatives {
		for _, app := range a.Applications {
			if app.Pattern != fcp.NameAddCheckpoint && app.Pattern != fcp.NameFilterNullValues {
				t.Errorf("pattern %s outside configured palette", app.Pattern)
			}
		}
	}
}

func TestPolicyVariants(t *testing.T) {
	cases := map[string]string{
		"default":    `{}`,
		"greedy":     `{"policy": "greedy", "topK": 2}`,
		"exhaustive": `{"policy": "exhaustive"}`,
		"random":     `{"policy": "random_sample", "sampleN": 4, "seed": 3}`,
	}
	for label, doc := range cases {
		d, err := Parse([]byte(doc))
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if _, err := d.Options(); err != nil {
			t.Errorf("%s: %v", label, err)
		}
	}
	d, _ := Parse([]byte(`{"policy": "magic"}`))
	if _, err := d.Options(); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("{")); err == nil {
		t.Error("bad JSON should fail")
	}
	bad := []string{
		`{"goals": {"speed": 1}}`,
		`{"dims": ["speed"]}`,
		`{"constraints": [{"characteristic": "performance"}]}`,
		`{"constraints": [{"characteristic": "magic", "minScore": 0.5}]}`,
		`{"customPatterns": [{"name": "x", "kind": "edge", "improves": "performance", "opKind": "teleport"}]}`,
		`{"customPatterns": [{"name": "x", "kind": "volume", "improves": "performance"}]}`,
	}
	for i, doc := range bad {
		d, err := Parse([]byte(doc))
		if err != nil {
			t.Fatalf("doc %d should parse as JSON", i)
		}
		_, errOpts := d.Options()
		_, errReg := d.Registry()
		if errOpts == nil && errReg == nil {
			t.Errorf("doc %d should fail materialisation", i)
		}
	}
}

func TestFullEvalOption(t *testing.T) {
	d, err := Parse([]byte(`{"policy": "greedy", "fullEval": true}`))
	if err != nil {
		t.Fatal(err)
	}
	opts, err := d.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts.DeltaEval != core.DeltaOff {
		t.Errorf("fullEval=true should select DeltaOff, got %v", opts.DeltaEval)
	}
	d2, _ := Parse([]byte(`{"policy": "greedy"}`))
	opts2, err := d2.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts2.DeltaEval != core.DeltaOn {
		t.Errorf("delta evaluation should default on, got %v", opts2.DeltaEval)
	}
}
