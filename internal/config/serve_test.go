package config

import (
	"strings"
	"testing"
	"time"
)

func TestParseServe(t *testing.T) {
	doc, err := ParseServe([]byte(`{
		"addr": "0.0.0.0:9090",
		"storeDir": "/var/lib/poiesis/sessions",
		"sessionTTL": "45m",
		"maxSessions": 9,
		"cacheEntries": 32,
		"cacheMB": 16,
		"drain": "5s",
		"nodeID": "a",
		"peers": {"a": "http://10.0.0.1:9090", "b": "http://10.0.0.2:9090"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Addr != "0.0.0.0:9090" || doc.StoreDir != "/var/lib/poiesis/sessions" ||
		doc.MaxSessions != 9 || doc.CacheEntries != 32 || doc.CacheMB != 16 {
		t.Errorf("fields wrong: %+v", doc)
	}
	if doc.NodeID != "a" || len(doc.Peers) != 2 || doc.Peers["b"] != "http://10.0.0.2:9090" {
		t.Errorf("cluster fields wrong: %+v", doc)
	}
	ttl, err := doc.SessionTTLDuration()
	if err != nil || ttl == nil || *ttl != 45*time.Minute {
		t.Errorf("sessionTTL: %v %v", ttl, err)
	}
	drain, err := doc.DrainDuration()
	if err != nil || drain == nil || *drain != 5*time.Second {
		t.Errorf("drain: %v %v", drain, err)
	}
}

func TestParseServeAbsentDurationsAreNil(t *testing.T) {
	doc, err := ParseServe([]byte(`{"storeDir": "x"}`))
	if err != nil {
		t.Fatal(err)
	}
	if d, err := doc.SessionTTLDuration(); d != nil || err != nil {
		t.Errorf("absent sessionTTL: %v %v", d, err)
	}
}

func TestParseServeSQLStore(t *testing.T) {
	doc, err := ParseServe([]byte(`{"storeSQL": "/var/lib/poiesis/sessions.db", "storeSQLDriver": "poiesis-sqlite"}`))
	if err != nil {
		t.Fatal(err)
	}
	if doc.StoreSQL != "/var/lib/poiesis/sessions.db" || doc.StoreSQLDriver != "poiesis-sqlite" {
		t.Errorf("SQL store fields wrong: %+v", doc)
	}
}

func TestParseServeRejectsMistakes(t *testing.T) {
	cases := map[string]string{
		"unknown key":       `{"storeDirs": "typo"}`,
		"bad ttl":           `{"sessionTTL": "45 minutes"}`,
		"negative drain":    `{"drain": "-3s"}`,
		"not a json object": `[1,2,3]`,
		"trailing nonsense": `{}garbage`,
		"wrong value type":  `{"maxSessions": "many"}`,
		"bad peer URL":      `{"peers": {"a": "not a url"}}`,
		"peer URL scheme":   `{"peers": {"a": "ftp://x:1"}}`,
		"empty peer ID":     `{"peers": {"": "http://x:1"}}`,
		"two stores":        `{"storeDir": "/tmp/x", "storeSQL": "/tmp/y.db"}`,
		"driver sans DSN":   `{"storeSQLDriver": "postgres"}`,
	}
	for name, in := range cases {
		if _, err := ParseServe([]byte(in)); err == nil {
			t.Errorf("%s accepted: %s", name, in)
		} else if !strings.Contains(err.Error(), "config") {
			t.Errorf("%s: error lacks package context: %v", name, err)
		}
	}
}
