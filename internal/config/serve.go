package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/url"
	"time"
)

// ServeDoc is the JSON configuration of the `poiesis serve` service — the
// operational knobs, as opposed to Document's planning knobs. Every field is
// optional; CLI flags given explicitly override the document. The storeDir
// key enables the crash-safe disk session store: sessions are snapshotted
// under the directory and restored on restart.
type ServeDoc struct {
	// Addr is the listen address (HOST:PORT).
	Addr string `json:"addr,omitempty"`
	// StoreDir persists sessions as crash-safe JSON snapshots under this
	// directory. Empty keeps the in-memory store (sessions die with the
	// process). Mutually exclusive with StoreSQL.
	StoreDir string `json:"storeDir,omitempty"`
	// StoreSQL persists sessions in a SQL database; the value is the DSN
	// handed to database/sql (for the built-in engine: a file path, or
	// ":memory:" for an ephemeral store). Mutually exclusive with StoreDir.
	StoreSQL string `json:"storeSQL,omitempty"`
	// StoreSQLDriver selects the database/sql driver for StoreSQL. Empty
	// uses the built-in dependency-free engine.
	StoreSQLDriver string `json:"storeSQLDriver,omitempty"`
	// SessionTTL evicts sessions idle longer than this (Go duration string,
	// e.g. "45m"). "0" disables eviction.
	SessionTTL string `json:"sessionTTL,omitempty"`
	// MaxSessions caps live sessions.
	MaxSessions int `json:"maxSessions,omitempty"`
	// CacheEntries bounds the plan cache entry count (secondary bound).
	CacheEntries int `json:"cacheEntries,omitempty"`
	// CacheMB is the plan cache byte budget in MiB.
	CacheMB int `json:"cacheMB,omitempty"`
	// Drain is the graceful-shutdown budget (Go duration string).
	Drain string `json:"drain,omitempty"`
	// NodeID names this replica within the cluster's peer list; required
	// when Peers is set (the -node-id flag overrides it).
	NodeID string `json:"nodeID,omitempty"`
	// Peers is the static cluster membership, node ID → base URL (including
	// this replica's own entry). Setting it turns the server into a
	// shard-aware replica: sessions route to the replica their ID hashes
	// to, and the plan cache gains a shared tier. Every replica must be
	// started with an identical membership.
	Peers map[string]string `json:"peers,omitempty"`
}

// ParseServe decodes a serve configuration document. Unknown keys are
// rejected — an operational config with a typo ("storeDirs") must fail
// loudly, not silently run with defaults — and duration strings are
// validated here so mistakes surface at startup rather than mid-flight.
func ParseServe(b []byte) (*ServeDoc, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var d ServeDoc
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("config: serve document: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("config: serve document: trailing data after the configuration object")
	}
	if _, err := d.SessionTTLDuration(); err != nil {
		return nil, err
	}
	if d.StoreDir != "" && d.StoreSQL != "" {
		return nil, fmt.Errorf("config: serve document: storeDir and storeSQL are mutually exclusive")
	}
	if d.StoreSQLDriver != "" && d.StoreSQL == "" {
		return nil, fmt.Errorf("config: serve document: storeSQLDriver requires storeSQL")
	}
	if _, err := d.DrainDuration(); err != nil {
		return nil, err
	}
	// Peer URLs are validated here for the same reason durations are: a
	// malformed member address must fail at startup, not on the first
	// forwarded request. Membership consistency (node ID in the list, no
	// duplicates) is the cluster layer's job — the CLI may override nodeID.
	for id, peer := range d.Peers {
		if id == "" {
			return nil, fmt.Errorf("config: serve document: peers: empty node ID")
		}
		u, err := url.Parse(peer)
		if err != nil {
			return nil, fmt.Errorf("config: serve document: peers[%s]: %w", id, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("config: serve document: peers[%s]: %q must be http(s)://host[:port]", id, peer)
		}
	}
	return &d, nil
}

// SessionTTLDuration parses the sessionTTL key; ok is reported through the
// pointer being nil when the key is absent.
func (d *ServeDoc) SessionTTLDuration() (*time.Duration, error) {
	return parseOptionalDuration("sessionTTL", d.SessionTTL)
}

// DrainDuration parses the drain key.
func (d *ServeDoc) DrainDuration() (*time.Duration, error) {
	return parseOptionalDuration("drain", d.Drain)
}

func parseOptionalDuration(key, val string) (*time.Duration, error) {
	if val == "" {
		return nil, nil
	}
	dur, err := time.ParseDuration(val)
	if err != nil {
		return nil, fmt.Errorf("config: serve document: %s: %w", key, err)
	}
	if dur < 0 {
		return nil, fmt.Errorf("config: serve document: %s must not be negative", key)
	}
	return &dur, nil
}
