// Package config parses the user-defined configuration documents that
// POIESIS "takes as input" alongside the initial ETL flow (Fig. 3): which
// patterns form the palette, which deployment policy places them, the
// prioritisation of quality goals, the measure constraints, the skyline
// dimensions and the simulation parameters. The format is JSON so the demo
// parts P2/P3 ("the user can select the preferred processing parameters ...
// and save their custom processing preferences") are scriptable.
package config

import (
	"encoding/json"
	"fmt"

	"poiesis/internal/core"
	"poiesis/internal/etl"
	"poiesis/internal/fcp"
	"poiesis/internal/measures"
	"poiesis/internal/policy"
	"poiesis/internal/sim"
)

// Document is the JSON schema of a POIESIS configuration.
type Document struct {
	// Palette selects pattern names (empty = full registry).
	Palette []string `json:"palette,omitempty"`

	// Policy selects the deployment policy: "exhaustive", "greedy",
	// "goal_driven" or "random_sample".
	Policy string `json:"policy,omitempty"`
	// TopK parameterises greedy/goal-driven policies.
	TopK int `json:"topK,omitempty"`
	// SampleN and Seed parameterise random sampling.
	SampleN int    `json:"sampleN,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`

	// Depth is the number of pattern-combination rounds.
	Depth int `json:"depth,omitempty"`
	// MaxAlternatives caps the generated space.
	MaxAlternatives int `json:"maxAlternatives,omitempty"`

	// Goals maps characteristic names to weights.
	Goals map[string]float64 `json:"goals,omitempty"`

	// Dims lists the skyline dimensions (characteristic names).
	Dims []string `json:"dims,omitempty"`

	// Constraints bound estimated measures.
	Constraints []ConstraintDoc `json:"constraints,omitempty"`

	// CustomPatterns declares additional edge/graph patterns (P3).
	CustomPatterns []CustomPatternDoc `json:"customPatterns,omitempty"`

	// Sim tunes the execution engine.
	Sim *SimDoc `json:"sim,omitempty"`

	// FullEval disables delta evaluation: every alternative is re-simulated
	// from its sources instead of reusing memoized upstream cones. Results
	// are identical either way; the switch exists for ablations and
	// debugging.
	FullEval bool `json:"fullEval,omitempty"`

	// RowEngine disables the columnar simulation engine: flows execute
	// row-at-a-time instead of over typed column batches. Results are
	// identical either way; the switch exists for ablations and debugging.
	RowEngine bool `json:"rowEngine,omitempty"`

	// NoPrune disables static achievability pruning: alternatives that
	// provably violate a structural Max constraint are evaluated and then
	// constraint-rejected instead of being dropped pre-evaluation.
	// Alternatives and the skyline are identical either way; the switch
	// exists for ablations and debugging.
	NoPrune bool `json:"noPrune,omitempty"`
}

// ConstraintDoc is one measure constraint: exactly one of Max/Min/MinScore
// semantics depending on which bound is set.
type ConstraintDoc struct {
	Characteristic string   `json:"characteristic"`
	Measure        string   `json:"measure,omitempty"`
	Max            *float64 `json:"max,omitempty"`
	Min            *float64 `json:"min,omitempty"`
	// MinScore bounds the characteristic's composite score (Measure empty).
	MinScore *float64 `json:"minScore,omitempty"`
}

// CustomPatternDoc declares a custom pattern.
type CustomPatternDoc struct {
	Name     string            `json:"name"`
	Kind     string            `json:"kind"` // "edge" or "graph"
	Improves string            `json:"improves"`
	OpKind   string            `json:"opKind,omitempty"`
	OpName   string            `json:"opName,omitempty"`
	Params   map[string]string `json:"params,omitempty"`
	// NearSource ranks points near data sources higher.
	NearSource bool `json:"nearSource,omitempty"`
	// MaxSourceDistance adds an upstream-distance prerequisite when > 0.
	MaxSourceDistance int `json:"maxSourceDistance,omitempty"`
}

// SimDoc tunes the simulator.
type SimDoc struct {
	DefaultRows     int     `json:"defaultRows,omitempty"`
	Runs            int     `json:"runs,omitempty"`
	RetryBudget     int     `json:"retryBudget,omitempty"`
	PipelineOverlap float64 `json:"pipelineOverlap,omitempty"`
	Seed            uint64  `json:"seed,omitempty"`
}

// Parse decodes a configuration document.
func Parse(b []byte) (*Document, error) {
	var d Document
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return &d, nil
}

// Goals materialises the goal weights.
func (d *Document) GoalSet() (policy.Goals, error) {
	w := map[measures.Characteristic]float64{}
	for name, weight := range d.Goals {
		c, err := parseCharacteristic(name)
		if err != nil {
			return policy.Goals{}, err
		}
		w[c] = weight
	}
	return policy.NewGoals(w), nil
}

// Options materialises planner options (palette, policy, depth, dims,
// constraints, simulation).
func (d *Document) Options() (core.Options, error) {
	opts := core.Options{
		Palette:         append([]string(nil), d.Palette...),
		Depth:           d.Depth,
		MaxAlternatives: d.MaxAlternatives,
	}
	if d.FullEval {
		opts.DeltaEval = core.DeltaOff
	}
	if d.RowEngine {
		opts.Columnar = core.ColumnarOff
	}
	if d.NoPrune {
		opts.StaticPrune = core.PruneOff
	}
	goals, err := d.GoalSet()
	if err != nil {
		return opts, err
	}
	switch d.Policy {
	case "", "greedy":
		k := d.TopK
		if k <= 0 {
			k = 3
		}
		opts.Policy = policy.Greedy{TopK: k}
	case "exhaustive":
		opts.Policy = policy.Exhaustive{MaxPerPattern: d.TopK}
	case "goal_driven":
		opts.Policy = policy.GoalDriven{Goals: goals, TopK: d.TopK}
	case "random_sample":
		opts.Policy = policy.RandomSample{N: d.SampleN, Seed: d.Seed}
	default:
		return opts, fmt.Errorf("config: unknown policy %q", d.Policy)
	}
	for _, name := range d.Dims {
		c, err := parseCharacteristic(name)
		if err != nil {
			return opts, err
		}
		opts.Dims = append(opts.Dims, c)
	}
	for i, cd := range d.Constraints {
		c, err := cd.build()
		if err != nil {
			return opts, fmt.Errorf("config: constraint %d: %w", i, err)
		}
		opts.Constraints = append(opts.Constraints, c)
	}
	if d.Sim != nil {
		cfg := sim.DefaultConfig()
		if d.Sim.DefaultRows > 0 {
			cfg.DefaultRows = d.Sim.DefaultRows
		}
		if d.Sim.Runs > 0 {
			cfg.Runs = d.Sim.Runs
		}
		if d.Sim.RetryBudget > 0 {
			cfg.RetryBudget = d.Sim.RetryBudget
		}
		if d.Sim.PipelineOverlap > 0 {
			cfg.PipelineOverlap = d.Sim.PipelineOverlap
		}
		if d.Sim.Seed != 0 {
			cfg.Seed = d.Sim.Seed
		}
		opts.Sim = cfg
	}
	return opts, nil
}

func (cd ConstraintDoc) build() (policy.Constraint, error) {
	c, err := parseCharacteristic(cd.Characteristic)
	if err != nil {
		return nil, err
	}
	switch {
	case cd.MinScore != nil:
		return policy.MinScore(c, *cd.MinScore), nil
	case cd.Max != nil && cd.Measure != "":
		return policy.MaxMeasure(c, cd.Measure, *cd.Max), nil
	case cd.Min != nil && cd.Measure != "":
		return policy.MinMeasure(c, cd.Measure, *cd.Min), nil
	default:
		return nil, fmt.Errorf("needs minScore, or measure with max/min")
	}
}

// Registry builds the pattern registry: the default palette extended with
// the document's custom patterns.
func (d *Document) Registry() (*fcp.Registry, error) {
	reg := fcp.DefaultRegistry()
	for i, cp := range d.CustomPatterns {
		pat, err := cp.build()
		if err != nil {
			return nil, fmt.Errorf("config: custom pattern %d: %w", i, err)
		}
		if err := reg.Register(pat); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

func (cp CustomPatternDoc) build() (fcp.Pattern, error) {
	improves, err := parseCharacteristic(cp.Improves)
	if err != nil {
		return nil, err
	}
	spec := fcp.CustomSpec{
		Name:              cp.Name,
		Improves:          improves,
		OpName:            cp.OpName,
		Params:            cp.Params,
		FitnessNearSource: cp.NearSource,
	}
	switch cp.Kind {
	case "edge":
		spec.Kind = fcp.EdgePoint
		spec.OpKind = etl.ParseOpKind(cp.OpKind)
		if spec.OpKind == etl.OpUnknown {
			return nil, fmt.Errorf("unknown operation kind %q", cp.OpKind)
		}
	case "graph":
		spec.Kind = fcp.GraphPoint
	default:
		return nil, fmt.Errorf("unknown point kind %q (want edge or graph)", cp.Kind)
	}
	if cp.MaxSourceDistance > 0 {
		spec.Conditions = append(spec.Conditions,
			fcp.UpstreamDistanceAtMost(cp.MaxSourceDistance))
	}
	return fcp.NewCustomPattern(spec)
}

func parseCharacteristic(name string) (measures.Characteristic, error) {
	for _, c := range measures.AllCharacteristics() {
		if string(c) == name {
			return c, nil
		}
	}
	return "", fmt.Errorf("config: unknown characteristic %q", name)
}
