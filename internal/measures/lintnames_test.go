package measures

import (
	"sort"
	"testing"

	"poiesis/internal/etl"
)

// etl.Lint's interval table and structural-measure list are written with
// string literals (importing this package from etl would be a cycle). These
// tests pin the literals to the canonical constants so a renamed measure
// cannot silently detach the static validator from the estimator.

func TestLintKnownMeasuresMatchConstants(t *testing.T) {
	want := []string{
		MCycleTime, MLatencyPerTup, MThroughput,
		MFreshness, MCurrency,
		MCompleteness, MUniqueness, MAccuracy,
		MLongestPath, MCoupling, MMergeCount, MSize, MCyclomatic,
		MSuccessRate, MWithinDeadline, MRecoveryTime, MCPCoverage,
		MTotalWork, MMemPeak, MMonetaryCost,
	}
	sort.Strings(want)
	got := etl.KnownMeasures()
	if len(got) != len(want) {
		t.Fatalf("etl.KnownMeasures lists %d measures, this package defines %d:\ngot  %v\nwant %v",
			len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("measure %d: etl interval table has %q, constants have %q", i, got[i], want[i])
		}
	}
}

func TestLintStructuralMeasuresMatchConstants(t *testing.T) {
	want := map[string]bool{MSize: true, MLongestPath: true, MMergeCount: true, MCyclomatic: true}
	got := etl.StructuralMeasures()
	if len(got) != len(want) {
		t.Fatalf("StructuralMeasures = %v, want the %d manageability structure measures", got, len(want))
	}
	for _, m := range got {
		if !want[m] {
			t.Errorf("StructuralMeasures lists %q, which is not a structural constant", m)
		}
	}
	// Coupling is deliberately absent: node insertion can lower 2|E|/|V|, so
	// it is not monotone over the pattern space and must never prune.
	for _, m := range got {
		if m == MCoupling {
			t.Error("coupling must not be treated as a monotone structural measure")
		}
	}
}

// TestManageabilityName pins the characteristic literal etl.Lint's
// achievability pass and core's staticPruner both compare against.
func TestManageabilityName(t *testing.T) {
	if string(Manageability) != "manageability" {
		t.Fatalf("Manageability = %q; the etl lint achievability pass matches the literal \"manageability\"", Manageability)
	}
}
