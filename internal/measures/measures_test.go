package measures

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"poiesis/internal/data"
	"poiesis/internal/etl"
	"poiesis/internal/sim"
	"poiesis/internal/trace"
)

func fixtureFlow(t testing.TB) *etl.Graph {
	t.Helper()
	s := etl.NewSchema(
		etl.Attribute{Name: "id", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "amount", Type: etl.TypeFloat},
		etl.Attribute{Name: "note", Type: etl.TypeString, Nullable: true},
	)
	return etl.NewBuilder("fixture").
		Op("src", "S", etl.OpExtract, s).
		Op("flt", "filter", etl.OpFilter, s).
		Op("drv", "derive", etl.OpDerive, s.With(etl.Attribute{Name: "tax", Type: etl.TypeFloat})).
		Op("ld", "DW", etl.OpLoad, etl.Schema{}).
		MustBuild()
}

func evaluate(t testing.TB, g *etl.Graph, d data.Defects) (*sim.Profile, *trace.Batch) {
	t.Helper()
	e := sim.NewEngine(sim.DefaultConfig())
	bind := sim.Binding{}
	for _, src := range g.Sources() {
		bind[src.ID] = data.SourceSpec{
			Name: src.Name, Schema: src.Out, Rows: 2000,
			Defects: d, UpdatesPerHour: 1, Seed: 7,
		}
	}
	p, b, err := e.Evaluate(g, bind)
	if err != nil {
		t.Fatal(err)
	}
	return p, b
}

func TestEstimateProducesAllCharacteristics(t *testing.T) {
	g := fixtureFlow(t)
	p, b := evaluate(t, g, data.Defects{NullRate: 0.05, DupRate: 0.02, ErrorRate: 0.03})
	r := NewEstimator(Config{}).Estimate(g, p, b)
	if r.Flow != "fixture" || r.Fingerprint == "" {
		t.Error("report identity incomplete")
	}
	for _, c := range AllCharacteristics() {
		cr, ok := r.Characteristic(c)
		if !ok {
			t.Fatalf("missing characteristic %s", c)
		}
		if cr.Score < 0 || cr.Score > 1 {
			t.Errorf("%s score %f out of [0,1]", c, cr.Score)
		}
		if len(cr.Measures) == 0 {
			t.Errorf("%s has no measures", c)
		}
	}
}

func TestFig1MeasuresPresent(t *testing.T) {
	g := fixtureFlow(t)
	p, b := evaluate(t, g, data.Defects{})
	r := NewEstimator(Config{}).Estimate(g, p, b)
	// Fig. 1 lists: cycle time and latency/tuple (performance); request time
	// minus last update and 1/(1-age*freq) (data quality); longest path,
	// coupling and merge count (manageability).
	checks := []struct {
		c    Characteristic
		name string
	}{
		{Performance, MCycleTime},
		{Performance, MLatencyPerTup},
		{DataQuality, MFreshness},
		{DataQuality, MCurrency},
		{Manageability, MLongestPath},
		{Manageability, MCoupling},
		{Manageability, MMergeCount},
	}
	for _, ck := range checks {
		if _, ok := r.MeasureValue(ck.c, ck.name); !ok {
			t.Errorf("Fig.1 measure %s/%s missing", ck.c, ck.name)
		}
	}
}

func TestStaticMeasuresMatchGraph(t *testing.T) {
	g := fixtureFlow(t)
	p, b := evaluate(t, g, data.Defects{})
	r := NewEstimator(Config{}).Estimate(g, p, b)
	if v, _ := r.MeasureValue(Manageability, MLongestPath); v != float64(g.LongestPath()) {
		t.Errorf("longest path %f != %d", v, g.LongestPath())
	}
	if v, _ := r.MeasureValue(Manageability, MCoupling); v != g.Coupling() {
		t.Errorf("coupling %f != %f", v, g.Coupling())
	}
	if v, _ := r.MeasureValue(Manageability, MSize); v != float64(g.Len()) {
		t.Errorf("size %f != %d", v, g.Len())
	}
}

func TestDataQualityRespondsToDefects(t *testing.T) {
	g := fixtureFlow(t)
	pClean, bClean := evaluate(t, g, data.Defects{})
	pDirty, bDirty := evaluate(t, g, data.Defects{NullRate: 0.2, DupRate: 0.1, ErrorRate: 0.1})
	est := NewEstimator(Config{})
	rClean := est.Estimate(g, pClean, bClean)
	rDirty := est.Estimate(g, pDirty, bDirty)
	cClean, _ := rClean.MeasureValue(DataQuality, MCompleteness)
	cDirty, _ := rDirty.MeasureValue(DataQuality, MCompleteness)
	if cDirty >= cClean {
		t.Errorf("completeness should drop with nulls: %f vs %f", cDirty, cClean)
	}
	if rDirty.Score(DataQuality) >= rClean.Score(DataQuality) {
		t.Error("data quality score should drop with defects")
	}
	if cClean != 1 {
		t.Errorf("clean completeness = %f, want 1", cClean)
	}
}

func TestSelfNormalisationScoresHalf(t *testing.T) {
	g := fixtureFlow(t)
	p, b := evaluate(t, g, data.Defects{})
	r := NewEstimator(Config{}).Estimate(g, p, b)
	// With zero references, ratio-based characteristic scores pin at 0.5.
	if got := r.Score(Performance); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("self-normalised performance = %f", got)
	}
	if got := r.Score(Manageability); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("self-normalised manageability = %f", got)
	}
	if got := r.Score(Cost); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("self-normalised cost = %f", got)
	}
}

func TestBaselineConfigAnchorsScores(t *testing.T) {
	g := fixtureFlow(t)
	p, b := evaluate(t, g, data.Defects{})
	cfg := BaselineConfig(g, p, b)
	if cfg.DeadlineMs <= 0 || cfg.RefCycleMs <= 0 || cfg.RefWorkMs <= 0 || cfg.RefMgmtUnits <= 0 {
		t.Fatalf("baseline config incomplete: %+v", cfg)
	}
	est := NewEstimator(cfg)
	r := est.Estimate(g, p, b)
	if math.Abs(r.Score(Performance)-0.5) > 1e-9 {
		t.Errorf("baseline flow should score 0.5 on performance, got %f", r.Score(Performance))
	}

	// A faster variant must score above the baseline.
	g2 := g.Clone()
	g2.MutableNode("drv").Parallelism = 8
	p2, b2 := evaluate(t, g2, data.Defects{})
	r2 := est.Estimate(g2, p2, b2)
	if r2.Score(Performance) <= r.Score(Performance) {
		t.Errorf("8x parallel derive should raise performance score: %f vs %f",
			r2.Score(Performance), r.Score(Performance))
	}
}

func TestCurrencyFormulaGuard(t *testing.T) {
	g := fixtureFlow(t)
	p, b := evaluate(t, g, data.Defects{})
	// Make age*frequency exceed 1: updates every minute, hourly load.
	b.SourceUpdatesPerHour = 120
	r := NewEstimator(Config{}).Estimate(g, p, b)
	cur, _ := r.MeasureValue(DataQuality, MCurrency)
	if cur != 0 {
		t.Errorf("currency factor must be guarded at 0 when stale, got %f", cur)
	}
	// Fresh case: the 1/(1-x) formula is positive and >= 1.
	b.SourceUpdatesPerHour = 0.5
	r2 := NewEstimator(Config{}).Estimate(g, p, b)
	cur2, _ := r2.MeasureValue(DataQuality, MCurrency)
	if cur2 < 1 {
		t.Errorf("currency factor = %f, want >= 1", cur2)
	}
}

func TestReliabilityMeasures(t *testing.T) {
	g := fixtureFlow(t)
	p, b := evaluate(t, g, data.Defects{})
	r := NewEstimator(Config{}).Estimate(g, p, b)
	sr, _ := r.MeasureValue(Reliability, MSuccessRate)
	if sr != b.SuccessRate() {
		t.Errorf("success rate %f != batch %f", sr, b.SuccessRate())
	}
	cov, _ := r.MeasureValue(Reliability, MCPCoverage)
	if cov != 0 {
		t.Errorf("flow without checkpoints has coverage %f", cov)
	}

	// Add a checkpoint: coverage must become positive.
	g2 := g.Clone()
	cp := etl.NewNode(g2.FreshID("cp"), "savepoint", etl.OpCheckpoint, g2.Node("flt").Out)
	if err := g2.InsertOnEdge("flt", "drv", cp); err != nil {
		t.Fatal(err)
	}
	p2, b2 := evaluate(t, g2, data.Defects{})
	r2 := NewEstimator(Config{}).Estimate(g2, p2, b2)
	cov2, _ := r2.MeasureValue(Reliability, MCPCoverage)
	if cov2 <= 0 {
		t.Errorf("coverage with checkpoint = %f", cov2)
	}
}

func TestVectorProjection(t *testing.T) {
	g := fixtureFlow(t)
	p, b := evaluate(t, g, data.Defects{})
	r := NewEstimator(Config{}).Estimate(g, p, b)
	dims := []Characteristic{Performance, DataQuality, Reliability}
	v := r.Vector(dims)
	if len(v) != 3 {
		t.Fatalf("vector len %d", len(v))
	}
	for i, d := range dims {
		if v[i] != r.Score(d) {
			t.Errorf("vector[%d] != score(%s)", i, d)
		}
	}
}

func TestReportString(t *testing.T) {
	g := fixtureFlow(t)
	p, b := evaluate(t, g, data.Defects{})
	s := NewEstimator(Config{}).Estimate(g, p, b).String()
	for _, want := range []string{"performance", "data_quality", MCycleTime, "first_pass_time"} {
		if !strings.Contains(s, want) {
			t.Errorf("report string missing %q", want)
		}
	}
}

func TestCustomMeasure(t *testing.T) {
	g := fixtureFlow(t)
	p, b := evaluate(t, g, data.Defects{})
	est := NewEstimator(Config{}).
		WithCustomMeasure(CustomMeasure{
			Characteristic: Manageability,
			Name:           "source_count",
			Unit:           "ops",
			Compute: func(g *etl.Graph, _ *sim.Profile, _ *trace.Batch) float64 {
				return float64(len(g.Sources()))
			},
		}).
		WithCustomMeasure(CustomMeasure{
			Characteristic: "security", // new characteristic created on demand
			Name:           "encrypted_ratio",
			Unit:           "ratio",
			HigherIsBetter: true,
			Compute: func(g *etl.Graph, _ *sim.Profile, _ *trace.Batch) float64 {
				n := 0
				for _, node := range g.Nodes() {
					if node.Kind == etl.OpEncrypt {
						n++
					}
				}
				return float64(n) / float64(g.Len())
			},
		})
	r := est.Estimate(g, p, b)
	if v, ok := r.MeasureValue(Manageability, "source_count"); !ok || v != 1 {
		t.Errorf("custom measure = %f, %v", v, ok)
	}
	if _, ok := r.Characteristic("security"); !ok {
		t.Error("on-demand characteristic missing")
	}
	// Custom measures participate in relative change like builtins.
	g2 := g.Clone()
	enc := etl.NewNode(g2.FreshID("enc"), "encrypt", etl.OpEncrypt, g2.Node("src").Out)
	if err := g2.InsertOnEdge("src", "flt", enc); err != nil {
		t.Fatal(err)
	}
	p2, b2 := evaluate(t, g2, data.Defects{})
	r2 := est.Estimate(g2, p2, b2)
	rel := Relative(r2, r)
	found := false
	for _, cr := range rel {
		if cr.Characteristic != "security" {
			continue
		}
		for _, m := range cr.Measures {
			if m.Name == "encrypted_ratio" && m.ImprovementPct > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Error("custom measure missing from relative change")
	}
}

func TestReportJSONSerialisable(t *testing.T) {
	g := fixtureFlow(t)
	p, b := evaluate(t, g, data.Defects{NullRate: 0.05})
	r := NewEstimator(Config{}).Estimate(g, p, b)
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Flow != r.Flow || len(back.Chars) != len(r.Chars) {
		t.Error("JSON round trip lost structure")
	}
	v1, _ := r.MeasureValue(Performance, MCycleTime)
	v2, _ := back.MeasureValue(Performance, MCycleTime)
	if v1 != v2 {
		t.Error("JSON round trip changed values")
	}
	// Drill-down details survive.
	cr, _ := back.Characteristic(Performance)
	m, _ := cr.Measure(MCycleTime)
	if len(m.Detail) == 0 {
		t.Error("details lost in JSON")
	}
}

func TestRelativeChange(t *testing.T) {
	g := fixtureFlow(t)
	p, b := evaluate(t, g, data.Defects{NullRate: 0.1})
	cfg := BaselineConfig(g, p, b)
	est := NewEstimator(cfg)
	baseline := est.Estimate(g, p, b)

	// Clean the flow: add a null filter near the source.
	g2 := g.Clone()
	fnv := etl.NewNode(g2.FreshID("fnv"), "filter_nulls", etl.OpFilterNull, g2.Node("src").Out.WithoutNullability())
	if err := g2.InsertOnEdge("src", "flt", fnv); err != nil {
		t.Fatal(err)
	}
	p2, b2 := evaluate(t, g2, data.Defects{NullRate: 0.1})
	alt := est.Estimate(g2, p2, b2)

	rel := Relative(alt, baseline)
	if len(rel) != len(AllCharacteristics()) {
		t.Fatalf("relative changes for %d characteristics", len(rel))
	}
	var dq *CharRelChange
	for i := range rel {
		if rel[i].Characteristic == DataQuality {
			dq = &rel[i]
		}
	}
	if dq == nil {
		t.Fatal("no data quality relative change")
	}
	if dq.ScoreDeltaPct <= 0 {
		t.Errorf("cleaning should improve data quality score: %+f%%", dq.ScoreDeltaPct)
	}
	found := false
	for _, m := range dq.Measures {
		if m.Name == MCompleteness {
			found = true
			if m.ImprovementPct <= 0 {
				t.Errorf("completeness improvement = %f%%", m.ImprovementPct)
			}
			if m.ImprovementPct != m.DeltaPct {
				t.Error("higher-is-better measure should keep sign")
			}
		}
	}
	if !found {
		t.Error("completeness missing from relative changes")
	}
}

func TestRelativeSignAdjustment(t *testing.T) {
	base := &Report{Flow: "b", Chars: []CharacteristicReport{{
		Characteristic: Performance,
		Score:          0.5,
		Measures: []Measure{
			{Name: MCycleTime, Value: 100},                       // lower is better
			{Name: MThroughput, Value: 50, HigherIsBetter: true}, // higher is better
		},
	}}}
	alt := &Report{Flow: "a", Chars: []CharacteristicReport{{
		Characteristic: Performance,
		Score:          0.6,
		Measures: []Measure{
			{Name: MCycleTime, Value: 80},
			{Name: MThroughput, Value: 60, HigherIsBetter: true},
		},
	}}}
	rel := Relative(alt, base)
	if len(rel) != 1 {
		t.Fatal("one characteristic expected")
	}
	for _, m := range rel[0].Measures {
		switch m.Name {
		case MCycleTime:
			if math.Abs(m.DeltaPct-(-20)) > 1e-9 || math.Abs(m.ImprovementPct-20) > 1e-9 {
				t.Errorf("cycle time rel = %+v", m)
			}
		case MThroughput:
			if math.Abs(m.DeltaPct-20) > 1e-9 || math.Abs(m.ImprovementPct-20) > 1e-9 {
				t.Errorf("throughput rel = %+v", m)
			}
		}
	}
}

func TestPctChangeEdgeCases(t *testing.T) {
	if pctChange(0, 0) != 0 {
		t.Error("0->0 should be 0%")
	}
	if pctChange(0, 5) != 100 {
		t.Error("0->x should cap at 100%")
	}
	if pctChange(10, 5) != -50 {
		t.Error("10->5 should be -50%")
	}
}

func TestSortedByImprovement(t *testing.T) {
	c := CharRelChange{Measures: []RelChange{
		{Name: "a", ImprovementPct: -5},
		{Name: "b", ImprovementPct: 10},
		{Name: "c", ImprovementPct: 2},
	}}
	got := c.SortedByImprovement()
	if got[0].Name != "b" || got[1].Name != "c" || got[2].Name != "a" {
		t.Errorf("sorted order = %v", got)
	}
}

func TestRatioScoreShape(t *testing.T) {
	if got := ratioScore(100, 100); got != 0.5 {
		t.Errorf("x==ref should give 0.5, got %f", got)
	}
	if ratioScore(10, 100) <= ratioScore(100, 100) {
		t.Error("smaller magnitude must score higher")
	}
	if ratioScore(1000, 100) >= ratioScore(100, 100) {
		t.Error("larger magnitude must score lower")
	}
	if got := ratioScore(50, 0); got != 0.5 {
		t.Errorf("zero ref should self-normalise to 0.5, got %f", got)
	}
}

func TestResourceFactorParam(t *testing.T) {
	g := fixtureFlow(t)
	p, b := evaluate(t, g, data.Defects{})
	est := NewEstimator(Config{RefWorkMs: 100})
	r1 := est.Estimate(g, p, b)
	g.Node("src").SetParam("resources.cost_factor", "2.5")
	r2 := est.Estimate(g, p, b)
	m1, _ := r1.MeasureValue(Cost, MMonetaryCost)
	m2, _ := r2.MeasureValue(Cost, MMonetaryCost)
	if math.Abs(m2-2.5*m1) > 1e-9 {
		t.Errorf("cost factor not applied: %f vs %f", m2, m1)
	}
	if r2.Score(Cost) >= r1.Score(Cost) {
		t.Error("pricier resources must lower the cost score")
	}
}
