package measures

import (
	"poiesis/internal/etl"
	"poiesis/internal/sim"
	"poiesis/internal/trace"
)

// Config holds the reference scales that normalise raw measures into [0,1]
// composite scores. The Planner derives them from the initial flow, so the
// baseline design scores ~0.5 on each ratio-based axis and improvements move
// towards 1. A zero value means "use the measured value itself as its own
// reference" (self-normalisation), which pins the score at 0.5.
type Config struct {
	// DeadlineMs is the delivery deadline used by the reliability measure
	// within_deadline_rate.
	DeadlineMs float64
	// RefCycleMs normalises the performance score.
	RefCycleMs float64
	// RefWorkMs normalises the cost score.
	RefWorkMs float64
	// RefMgmtUnits normalises the manageability score.
	RefMgmtUnits float64
	// CostPerWorkMs converts abstract busy-time into monetary resource cost
	// (the graph-wide resource patterns scale it).
	CostPerWorkMs float64
}

// CustomMeasure is a user-defined quality metric (demo part P3: users define
// "their own Flow Component Patterns, quality metrics and deployment
// policies"). The function computes the raw value from the design and its
// execution evidence; the measure is appended to its characteristic's
// report and participates in relative-change analysis like any builtin.
type CustomMeasure struct {
	Characteristic Characteristic
	Name           string
	Unit           string
	HigherIsBetter bool
	Compute        func(g *etl.Graph, p *sim.Profile, b *trace.Batch) float64
}

// Estimator turns a flow + its execution traces into a quality Report.
type Estimator struct {
	cfg    Config
	custom []CustomMeasure
}

// NewEstimator returns an estimator with the given reference configuration.
func NewEstimator(cfg Config) *Estimator {
	if cfg.CostPerWorkMs <= 0 {
		cfg.CostPerWorkMs = 0.001
	}
	return &Estimator{cfg: cfg}
}

// WithCustomMeasure registers a user-defined metric and returns the
// estimator for chaining. Registration order is presentation order.
func (e *Estimator) WithCustomMeasure(m CustomMeasure) *Estimator {
	e.custom = append(e.custom, m)
	return e
}

// BaselineConfig derives a Config from the initial flow's profile and batch,
// so that alternatives are scored against the initial design. The deadline
// follows the common SLA practice of 1.5x the observed mean cycle time.
func BaselineConfig(g *etl.Graph, p *sim.Profile, b *trace.Batch) Config {
	return Config{
		DeadlineMs:   1.5 * b.MeanCycleTime(),
		RefCycleMs:   b.MeanCycleTime(),
		RefWorkMs:    totalWork(p),
		RefMgmtUnits: mgmtUnits(g),
	}
}

// Estimate computes the full measure tree for one design.
func (e *Estimator) Estimate(g *etl.Graph, p *sim.Profile, b *trace.Batch) *Report {
	r := &Report{Flow: g.Name, Fingerprint: g.Fingerprint()}
	r.Chars = append(r.Chars,
		e.performance(g, p, b),
		e.dataQuality(g, p, b),
		e.manageability(g),
		e.reliability(g, p, b),
		e.cost(g, p, b),
	)
	for _, cm := range e.custom {
		cr, ok := r.Characteristic(cm.Characteristic)
		if !ok {
			r.Chars = append(r.Chars, CharacteristicReport{Characteristic: cm.Characteristic})
			cr = &r.Chars[len(r.Chars)-1]
		}
		cr.Measures = append(cr.Measures, Measure{
			Name:           cm.Name,
			Value:          cm.Compute(g, p, b),
			Unit:           cm.Unit,
			HigherIsBetter: cm.HigherIsBetter,
		})
	}
	return r
}

// ---------------------------------------------------------------- measures

func (e *Estimator) performance(g *etl.Graph, p *sim.Profile, b *trace.Batch) CharacteristicReport {
	cycle := b.MeanCycleTime()
	throughput := 0.0
	if cycle > 0 {
		throughput = float64(p.RowsLoaded) / (cycle / 1000)
	}
	ref := e.cfg.RefCycleMs
	if ref <= 0 {
		ref = cycle
	}
	score := ratioScore(cycle, ref)
	return CharacteristicReport{
		Characteristic: Performance,
		Score:          score,
		Measures: []Measure{
			{
				Name: MCycleTime, Value: cycle, Unit: "ms",
				Detail: []Measure{
					{Name: "first_pass_time", Value: p.FirstPassMs, Unit: "ms"},
					{Name: "mean_recovery_overhead", Value: b.MeanRecoveryTime(), Unit: "ms"},
					{Name: "p95_cycle_time", Value: b.PercentileCycleTime(0.95), Unit: "ms"},
				},
			},
			{Name: MLatencyPerTup, Value: p.LatencyPerTupleMs, Unit: "ms/tuple"},
			{Name: MThroughput, Value: throughput, Unit: "rows/s", HigherIsBetter: true},
		},
	}
}

func (e *Estimator) dataQuality(g *etl.Graph, p *sim.Profile, b *trace.Batch) CharacteristicReport {
	completeness := 1.0
	if p.OutCells > 0 {
		completeness = 1 - float64(p.OutNullCells)/float64(p.OutCells)
	}
	uniqueness, accuracy := 1.0, 1.0
	if p.OutRows > 0 {
		uniqueness = 1 - float64(p.OutDupRows)/float64(p.OutRows)
		accuracy = 1 - float64(p.OutErrRows)/float64(p.OutRows)
	}

	// Freshness per Fig. 1: "Request time - Time of last update". Under
	// periodic recurrence, a request arrives on average half a period after
	// the last load finished, and the loaded data is itself one cycle old.
	ageHours := (b.PeriodMinutes/2)/60 + b.MeanCycleTime()/3.6e6
	// Currency factor per Fig. 1: 1 / (1 - age * frequency-of-updates),
	// guarded where the denominator crosses zero (data older than one
	// upstream refresh interval: maximally stale).
	missed := ageHours * b.SourceUpdatesPerHour
	currency := 0.0
	if missed < 1 {
		currency = 1 / (1 - missed)
	}
	freshScore := 1 / (1 + missed)

	score := (completeness + uniqueness + accuracy + freshScore) / 4
	return CharacteristicReport{
		Characteristic: DataQuality,
		Score:          score,
		Measures: []Measure{
			{
				Name: MFreshness, Value: ageHours, Unit: "h",
				Detail: []Measure{
					{Name: "recurrence_period", Value: b.PeriodMinutes, Unit: "min"},
					{Name: "source_updates_per_hour", Value: b.SourceUpdatesPerHour, Unit: "1/h", HigherIsBetter: true},
				},
			},
			{Name: MCurrency, Value: currency, Unit: ""},
			{
				Name: MCompleteness, Value: completeness, Unit: "ratio", HigherIsBetter: true,
				Detail: []Measure{
					{Name: "null_cells", Value: float64(p.OutNullCells), Unit: "cells"},
					{Name: "total_cells", Value: float64(p.OutCells), Unit: "cells", HigherIsBetter: true},
				},
			},
			{
				Name: MUniqueness, Value: uniqueness, Unit: "ratio", HigherIsBetter: true,
				Detail: []Measure{
					{Name: "duplicate_rows", Value: float64(p.OutDupRows), Unit: "rows"},
				},
			},
			{
				Name: MAccuracy, Value: accuracy, Unit: "ratio", HigherIsBetter: true,
				Detail: []Measure{
					{Name: "erroneous_rows", Value: float64(p.OutErrRows), Unit: "rows"},
				},
			},
		},
	}
}

func (e *Estimator) manageability(g *etl.Graph) CharacteristicReport {
	units := mgmtUnits(g)
	ref := e.cfg.RefMgmtUnits
	if ref <= 0 {
		ref = units
	}
	return CharacteristicReport{
		Characteristic: Manageability,
		Score:          ratioScore(units, ref),
		Measures: []Measure{
			{Name: MLongestPath, Value: float64(g.LongestPath()), Unit: "ops"},
			{Name: MCoupling, Value: g.Coupling(), Unit: "edges/node"},
			{Name: MMergeCount, Value: float64(g.MergeCount()), Unit: "ops"},
			{
				Name: MSize, Value: float64(g.Len()), Unit: "ops",
				Detail: []Measure{
					{Name: "edges", Value: float64(g.EdgeCount()), Unit: "edges"},
					{Name: "generated_ops", Value: float64(g.GeneratedCount()), Unit: "ops"},
				},
			},
			{Name: MCyclomatic, Value: float64(g.CyclomaticComplexity()), Unit: ""},
		},
	}
}

// mgmtUnits folds the Fig. 1 manageability measures into one structural
// complexity magnitude (lower is better).
func mgmtUnits(g *etl.Graph) float64 {
	return float64(g.LongestPath()) +
		4*g.Coupling() +
		2*float64(g.MergeCount()) +
		0.1*float64(g.Len())
}

func (e *Estimator) reliability(g *etl.Graph, p *sim.Profile, b *trace.Batch) CharacteristicReport {
	deadline := e.cfg.DeadlineMs
	if deadline <= 0 {
		deadline = 1.5 * b.MeanCycleTime()
	}
	within := b.WithinDeadlineRate(deadline)
	success := b.SuccessRate()
	coverage := checkpointCoverage(g, p)
	score := 0.5*success + 0.5*within
	return CharacteristicReport{
		Characteristic: Reliability,
		Score:          score,
		Measures: []Measure{
			{Name: MSuccessRate, Value: success, Unit: "ratio", HigherIsBetter: true,
				Detail: []Measure{
					{Name: "mean_failures_per_run", Value: b.Mean(func(r trace.Run) float64 { return float64(r.FailureCount) }), Unit: ""},
				}},
			{Name: MWithinDeadline, Value: within, Unit: "ratio", HigherIsBetter: true,
				Detail: []Measure{
					{Name: "deadline", Value: deadline, Unit: "ms", HigherIsBetter: true},
				}},
			{Name: MRecoveryTime, Value: b.MeanRecoveryTime(), Unit: "ms"},
			{Name: MCPCoverage, Value: coverage, Unit: "ratio", HigherIsBetter: true},
		},
	}
}

// checkpointCoverage is the fraction of operations whose failure recovery
// can restart from a savepoint rather than from the sources.
func checkpointCoverage(g *etl.Graph, p *sim.Profile) float64 {
	if len(p.Order) == 0 {
		return 0
	}
	n := 0
	for _, cp := range p.RestartFromCheckpoint {
		if cp {
			n++
		}
	}
	return float64(n) / float64(len(p.Order))
}

func (e *Estimator) cost(g *etl.Graph, p *sim.Profile, b *trace.Batch) CharacteristicReport {
	work := totalWork(p)
	ref := e.cfg.RefWorkMs
	if ref <= 0 {
		ref = work
	}
	// Cost accrues per execution: a flow scheduled twice as often costs
	// twice as much per hour (the trade-off of TuneRecurrenceFrequency).
	runsPerHour := 1.0
	if b.PeriodMinutes > 0 {
		runsPerHour = 60 / b.PeriodMinutes
	}
	hourly := work * resourceFactor(g) * runsPerHour
	money := hourly * e.cfg.CostPerWorkMs
	return CharacteristicReport{
		Characteristic: Cost,
		Score:          ratioScore(hourly, ref),
		Measures: []Measure{
			{Name: MTotalWork, Value: work, Unit: "ms",
				Detail: []Measure{
					{Name: "runs_per_hour", Value: runsPerHour, Unit: "1/h"},
				}},
			{Name: MMemPeak, Value: float64(p.MemRowsPeak), Unit: "rows"},
			{Name: MMonetaryCost, Value: money, Unit: "units/h"},
		},
	}
}

func totalWork(p *sim.Profile) float64 {
	// Summation follows the topological order (TimeMs is aligned with
	// p.Order): float addition is not associative, so the iteration order is
	// part of the determinism contract.
	sum := 0.0
	for _, t := range p.TimeMs {
		sum += t
	}
	return sum
}

// resourceFactor reads the graph-wide "resources.cost_factor" convention
// (set by the UpgradeResources pattern: better hardware costs more).
func resourceFactor(g *etl.Graph) float64 {
	for _, n := range g.Nodes() {
		if v := n.Param("resources.cost_factor"); v != "" {
			if f := parseFloatParam(v); f > 0 {
				return f
			}
		}
	}
	return 1
}

func parseFloatParam(s string) float64 {
	var f, frac float64
	seenDot := false
	div := 1.0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			if seenDot {
				div *= 10
				frac += float64(c-'0') / div
			} else {
				f = f*10 + float64(c-'0')
			}
		case c == '.' && !seenDot:
			seenDot = true
		default:
			return 0
		}
	}
	return f + frac
}

// ratioScore maps a lower-is-better magnitude onto (0,1]: ref/(ref+x), so
// x==ref scores 0.5, x->0 scores 1 and x->inf scores 0.
func ratioScore(x, ref float64) float64 {
	if ref <= 0 {
		return 0.5
	}
	return ref / (ref + x)
}
