// Package measures implements the quality-measure estimation of POIESIS
// (Fig. 1 of the paper, elaborated in Theodorou et al., "Quality Measures
// for ETL Processes", DaWaK 2014). Measures come in two kinds: those that
// derive directly from the static structure of the process model, and those
// obtained from analysis of historical traces capturing the runtime
// behaviour of ETL components (produced here by internal/sim).
//
// Measures are organised as a tree — characteristic, measure, detail — so
// the Fig. 5 interaction ("when the user selects any of the bars ... the
// corresponding composite measure expands to more detailed measures") is a
// first-class operation.
package measures

import (
	"fmt"
	"sort"
	"strings"
)

// Characteristic is a top-level quality characteristic of an ETL process.
type Characteristic string

// The characteristics tracked by the estimator. Performance, data quality
// and manageability come from Fig. 1; reliability is the third axis of the
// Fig. 4 scatter plot; cost underlies the resource trade-offs of graph-wide
// patterns.
const (
	Performance   Characteristic = "performance"
	DataQuality   Characteristic = "data_quality"
	Manageability Characteristic = "manageability"
	Reliability   Characteristic = "reliability"
	Cost          Characteristic = "cost"
)

// AllCharacteristics lists every characteristic in presentation order.
func AllCharacteristics() []Characteristic {
	return []Characteristic{Performance, DataQuality, Manageability, Reliability, Cost}
}

// Measure is one named quality measure with its raw value.
type Measure struct {
	Name  string
	Value float64
	Unit  string
	// HigherIsBetter orients the measure for relative-change reporting.
	HigherIsBetter bool
	// Detail holds the more detailed composing metrics the measure expands
	// to (Fig. 5 drill-down). May be empty.
	Detail []Measure
}

// String renders "name = value unit".
func (m Measure) String() string {
	return fmt.Sprintf("%s = %.4g %s", m.Name, m.Value, m.Unit)
}

// CharacteristicReport aggregates the measures of one characteristic and its
// normalised composite score in [0,1] (larger values preferred, as required
// by the skyline: "larger values are preferred to smaller ones").
type CharacteristicReport struct {
	Characteristic Characteristic
	// Score is the normalised composite in [0,1].
	Score    float64
	Measures []Measure
}

// Measure returns the named measure of the characteristic report.
func (c *CharacteristicReport) Measure(name string) (Measure, bool) {
	for _, m := range c.Measures {
		if m.Name == name {
			return m, true
		}
	}
	return Measure{}, false
}

// Report is the full quality estimate of one ETL flow design.
type Report struct {
	Flow        string
	Fingerprint string
	Chars       []CharacteristicReport
}

// Characteristic returns the report of one characteristic.
func (r *Report) Characteristic(c Characteristic) (*CharacteristicReport, bool) {
	for i := range r.Chars {
		if r.Chars[i].Characteristic == c {
			return &r.Chars[i], true
		}
	}
	return nil, false
}

// Score returns the composite score of a characteristic (0 when absent).
func (r *Report) Score(c Characteristic) float64 {
	if cr, ok := r.Characteristic(c); ok {
		return cr.Score
	}
	return 0
}

// MeasureValue returns the raw value of a named measure under a
// characteristic; ok is false when either is absent.
func (r *Report) MeasureValue(c Characteristic, name string) (float64, bool) {
	cr, ok := r.Characteristic(c)
	if !ok {
		return 0, false
	}
	m, ok := cr.Measure(name)
	if !ok {
		return 0, false
	}
	return m.Value, true
}

// Vector projects the report onto the given characteristics, returning the
// composite scores in order. The skyline operates on these vectors.
func (r *Report) Vector(dims []Characteristic) []float64 {
	out := make([]float64, len(dims))
	for i, d := range dims {
		out[i] = r.Score(d)
	}
	return out
}

// String renders the full measure tree, two levels of indentation.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "report for %q\n", r.Flow)
	for _, cr := range r.Chars {
		fmt.Fprintf(&b, "  %-14s score=%.4f\n", cr.Characteristic, cr.Score)
		for _, m := range cr.Measures {
			fmt.Fprintf(&b, "    %-32s %12.4g %s\n", m.Name, m.Value, m.Unit)
			for _, d := range m.Detail {
				fmt.Fprintf(&b, "      %-30s %12.4g %s\n", d.Name, d.Value, d.Unit)
			}
		}
	}
	return b.String()
}

// Names of the standard measures, exported so patterns, tests and benchmarks
// reference them without string drift.
const (
	MCycleTime      = "process_cycle_time"
	MLatencyPerTup  = "avg_latency_per_tuple"
	MThroughput     = "throughput"
	MFreshness      = "staleness_age"
	MCurrency       = "currency_factor"
	MCompleteness   = "completeness"
	MUniqueness     = "uniqueness"
	MAccuracy       = "accuracy"
	MLongestPath    = "longest_path"
	MCoupling       = "coupling"
	MMergeCount     = "merge_elements"
	MSize           = "flow_size"
	MCyclomatic     = "cyclomatic_complexity"
	MSuccessRate    = "success_rate"
	MWithinDeadline = "within_deadline_rate"
	MRecoveryTime   = "mean_recovery_time"
	MCPCoverage     = "checkpoint_coverage"
	MTotalWork      = "total_work"
	MMemPeak        = "memory_peak_rows"
	MMonetaryCost   = "resource_cost"
)

// RelChange is the relative change of one measure versus the initial-flow
// baseline, the quantity the Fig. 5 bar graph displays.
type RelChange struct {
	Name string
	// DeltaPct is the raw percentage change of the value: 100*(new-old)/old.
	DeltaPct float64
	// ImprovementPct is DeltaPct sign-adjusted so that positive always means
	// better (a 10% drop of cycle time is a +10% improvement).
	ImprovementPct float64
	// Detail carries drill-down changes of the composing metrics.
	Detail []RelChange
}

// CharRelChange aggregates the relative changes of one characteristic.
type CharRelChange struct {
	Characteristic Characteristic
	// ScoreDeltaPct is the percentage change of the composite score.
	ScoreDeltaPct float64
	Measures      []RelChange
}

// Relative compares a report against the baseline (the initial flow) and
// returns, per characteristic, "the relative change on the metrics for each
// quality characteristic, denoting the estimated effect of selecting each of
// the available flows, compared with the initial flow" (Fig. 5).
func Relative(r, baseline *Report) []CharRelChange {
	var out []CharRelChange
	for _, cr := range r.Chars {
		base, ok := baseline.Characteristic(cr.Characteristic)
		if !ok {
			continue
		}
		c := CharRelChange{
			Characteristic: cr.Characteristic,
			ScoreDeltaPct:  pctChange(base.Score, cr.Score),
		}
		for _, m := range cr.Measures {
			bm, ok := base.Measure(m.Name)
			if !ok {
				continue
			}
			c.Measures = append(c.Measures, relMeasure(m, bm))
		}
		out = append(out, c)
	}
	return out
}

func relMeasure(m, bm Measure) RelChange {
	rc := RelChange{
		Name:     m.Name,
		DeltaPct: pctChange(bm.Value, m.Value),
	}
	rc.ImprovementPct = rc.DeltaPct
	if !m.HigherIsBetter {
		rc.ImprovementPct = -rc.DeltaPct
	}
	for _, d := range m.Detail {
		for _, bd := range bm.Detail {
			if bd.Name == d.Name {
				rc.Detail = append(rc.Detail, relMeasure(d, bd))
				break
			}
		}
	}
	return rc
}

func pctChange(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 100
	}
	return 100 * (new - old) / old
}

// SortedByImprovement returns the measure changes ordered best-first.
func (c CharRelChange) SortedByImprovement() []RelChange {
	out := append([]RelChange(nil), c.Measures...)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].ImprovementPct > out[j].ImprovementPct
	})
	return out
}
