// Package data provides deterministic random number generation and synthetic
// tuple generation with controllable data-quality defects (nulls, duplicates,
// erroneous values). It substitutes the TPC-DS/TPC-H dbgen data used by the
// POIESIS demo: the measures only observe cardinalities, defect rates and
// update timestamps, all of which these generators reproduce.
package data

import "math"

// RNG is a splitmix64 pseudo-random generator. It is deterministic across
// platforms and Go versions (unlike math/rand's global source), tiny, and
// fast enough to generate millions of tuples in benchmarks.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("data: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a normally distributed float64 (mean 0, stddev 1)
// using the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Exp returns an exponentially distributed float64 with the given rate.
// The simulator draws inter-failure times from it.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Zipf returns a Zipf-distributed int in [0, n) with skew s > 1, using
// rejection-inversion-free simple inversion over precomputed mass would be
// heavy; for workload generation purposes a bounded power-law draw is
// sufficient and allocation free.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF approximation of a bounded Pareto.
	u := r.Float64()
	x := math.Pow(float64(n), 1-s)
	v := math.Pow(1-u*(1-x), 1/(1-s))
	i := int(v) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Fork derives an independent generator from the current one; generating
// from the fork does not perturb the parent stream. Used to give each
// simulated run its own stream while keeping run N reproducible regardless
// of how much randomness run N-1 consumed.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xD1B54A32D192ED03)
}
