package data

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d times in 1000 draws", same)
	}
}

func TestRNGKnownValues(t *testing.T) {
	// Pin the splitmix64 stream so accidental algorithm changes are caught:
	// these values must never change, or every benchmark becomes
	// incomparable across versions.
	r := NewRNG(0)
	want := []uint64{
		0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Errorf("draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(11)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %f", got)
	}
	if r.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !r.Bool(1.1) {
		t.Error("Bool(>1) must be true")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	n := 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("mean = %f", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %f", variance)
	}
}

func TestExp(t *testing.T) {
	r := NewRNG(5)
	n := 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatal("Exp must be non-negative")
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %f, want ~0.5", mean)
	}
	if !math.IsInf(r.Exp(0), 1) {
		t.Error("Exp(0) should be +Inf")
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Zipf(10, 1.5)
		if v < 0 || v >= 10 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[9] {
		t.Errorf("Zipf not skewed: first=%d last=%d", counts[0], counts[9])
	}
	if got := r.Zipf(1, 1.5); got != 0 {
		t.Errorf("Zipf(1) = %d", got)
	}
}

func TestForkIndependence(t *testing.T) {
	a := NewRNG(100)
	f1 := a.Fork()
	// Consuming from the fork must not perturb the parent.
	b := NewRNG(100)
	_ = b.Fork()
	for i := 0; i < 100; i++ {
		f1.Uint64()
	}
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("fork consumption perturbed parent stream")
		}
	}
}

func TestForkStreamsDiffer(t *testing.T) {
	a := NewRNG(100)
	f1, f2 := a.Fork(), a.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("sibling forks collided %d/100 draws", same)
	}
}

// Property: Intn stays in range for arbitrary positive n and seeds.
func TestIntnProperty(t *testing.T) {
	prop := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
