package data

import (
	"fmt"

	"poiesis/internal/etl"
)

// Defects configures the data-quality defects injected into a generated
// rowset. Rates are probabilities in [0,1] applied per row.
type Defects struct {
	// NullRate is the probability that each nullable attribute of a row is
	// NULL.
	NullRate float64
	// DupRate is the probability that a row is emitted twice (an exact
	// duplicate of the previous row).
	DupRate float64
	// ErrorRate is the probability that a row carries an erroneous value
	// (out-of-domain number or corrupted string) in one non-key attribute.
	ErrorRate float64
}

// SourceSpec describes one synthetic data source: its schema, cardinality,
// defect profile and freshness behaviour.
type SourceSpec struct {
	Name   string
	Schema etl.Schema
	// Rows is the number of logical rows (before duplication defects).
	Rows int
	// Defects configures injected quality problems.
	Defects Defects
	// UpdatesPerHour is how often the source is refreshed upstream; the
	// data-quality "frequency of updates" measure reads it.
	UpdatesPerHour float64
	// Seed isolates this source's random stream.
	Seed uint64
}

// RowSet is a generated batch of rows plus bookkeeping about the injected
// defects, so tests can assert that cleaning operations find them.
type RowSet struct {
	Schema etl.Schema
	Rows   []etl.Row

	// Injected defect counts (ground truth).
	Nulls      int
	Duplicates int
	Errors     int
}

// ErrMarker is the sentinel corrupted-string prefix used for injected
// erroneous values; the crosscheck operation detects it.
const ErrMarker = "\x01ERR:"

// Generate produces the rowset for the spec. Generation is deterministic in
// the seed: the same spec yields byte-identical data.
func Generate(spec SourceSpec) *RowSet {
	rng := NewRNG(spec.Seed | 1)
	rs := &RowSet{Schema: spec.Schema}
	rs.Rows = make([]etl.Row, 0, spec.Rows+spec.Rows/8)
	for i := 0; i < spec.Rows; i++ {
		row := genRow(rng, spec.Schema, int64(i))
		// Inject an erroneous value into a non-key attribute.
		if rng.Bool(spec.Defects.ErrorRate) {
			if j := pickNonKey(rng, spec.Schema); j >= 0 {
				row[j] = corrupt(rng, spec.Schema.Attrs[j])
				rs.Errors++
			}
		}
		// Inject NULLs into nullable attributes.
		rowNulls := 0
		for j, a := range spec.Schema.Attrs {
			if a.Nullable && rng.Bool(spec.Defects.NullRate) {
				row[j] = nil
				rowNulls++
			}
		}
		rs.Nulls += rowNulls
		rs.Rows = append(rs.Rows, row)
		if rng.Bool(spec.Defects.DupRate) {
			rs.Rows = append(rs.Rows, row.Clone())
			rs.Duplicates++
			// The duplicate physically repeats the row's null cells.
			rs.Nulls += rowNulls
		}
	}
	return rs
}

// genRow synthesises one clean row. Key integer attributes carry the row
// ordinal so keys are unique before defect injection.
func genRow(rng *RNG, s etl.Schema, ordinal int64) etl.Row {
	row := make(etl.Row, s.Len())
	for i, a := range s.Attrs {
		switch a.Type {
		case etl.TypeInt:
			if a.Key {
				row[i] = ordinal
			} else {
				row[i] = int64(rng.Intn(100000))
			}
		case etl.TypeFloat:
			row[i] = rng.Float64() * 1000
		case etl.TypeString:
			if a.Key {
				row[i] = fmt.Sprintf("%s-%08d", a.Name, ordinal)
			} else {
				row[i] = randomWord(rng)
			}
		case etl.TypeDate:
			// days since epoch within ~3 years
			row[i] = int64(17000 + rng.Intn(1100))
		case etl.TypeBool:
			row[i] = rng.Bool(0.5)
		default:
			row[i] = nil
		}
	}
	return row
}

var words = []string{
	"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
	"hotel", "india", "juliet", "kilo", "lima", "mike", "november",
	"oscar", "papa", "quebec", "romeo", "sierra", "tango",
}

func randomWord(rng *RNG) string {
	return words[rng.Zipf(len(words), 1.2)]
}

func pickNonKey(rng *RNG, s etl.Schema) int {
	var candidates []int
	for i, a := range s.Attrs {
		// Booleans have no out-of-domain value to corrupt into.
		if !a.Key && a.Type != etl.TypeBool {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[rng.Intn(len(candidates))]
}

func corrupt(rng *RNG, a etl.Attribute) etl.Value {
	switch a.Type {
	case etl.TypeInt:
		return int64(-1_000_000 - int64(rng.Intn(1000)))
	case etl.TypeFloat:
		return -1e9 - rng.Float64()
	case etl.TypeDate:
		return int64(-1)
	default:
		return ErrMarker + randomWord(rng)
	}
}

// IsErroneous reports whether a value looks like an injected defect. The
// crosscheck/cleaning simulation uses it as its ground-truth oracle.
func IsErroneous(v etl.Value) bool {
	switch x := v.(type) {
	case int64:
		return x <= -1_000_000 || x == -1
	case float64:
		return x <= -1e9
	case string:
		return len(x) >= len(ErrMarker) && x[:len(ErrMarker)] == ErrMarker
	}
	return false
}

// Stats summarises the observed defect rates of a rowset, measured rather
// than taken from the injection bookkeeping.
type Stats struct {
	Rows       int
	NullCells  int
	Duplicates int
	Errors     int
}

// Measure scans rows and counts observable defects against the schema.
func Measure(schema etl.Schema, rows []etl.Row) Stats {
	st := Stats{Rows: len(rows)}
	keyPos := keyPositions(schema)
	seen := make(map[string]bool, len(rows))
	for _, r := range rows {
		for i := range schema.Attrs {
			if r.IsNullAt(i) {
				st.NullCells++
			}
		}
		for _, v := range r {
			if IsErroneous(v) {
				st.Errors++
				break
			}
		}
		if len(keyPos) > 0 {
			k := r.KeyString(keyPos)
			if seen[k] {
				st.Duplicates++
			}
			seen[k] = true
		}
	}
	return st
}

func keyPositions(s etl.Schema) []int {
	var out []int
	for i, a := range s.Attrs {
		if a.Key {
			out = append(out, i)
		}
	}
	return out
}
