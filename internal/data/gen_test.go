package data

import (
	"reflect"
	"testing"
	"testing/quick"

	"poiesis/internal/etl"
)

func spec(rows int, d Defects) SourceSpec {
	return SourceSpec{
		Name: "test",
		Schema: etl.NewSchema(
			etl.Attribute{Name: "id", Type: etl.TypeInt, Key: true},
			etl.Attribute{Name: "qty", Type: etl.TypeInt},
			etl.Attribute{Name: "price", Type: etl.TypeFloat},
			etl.Attribute{Name: "note", Type: etl.TypeString, Nullable: true},
			etl.Attribute{Name: "when", Type: etl.TypeDate},
			etl.Attribute{Name: "flag", Type: etl.TypeBool},
		),
		Rows:           rows,
		Defects:        d,
		UpdatesPerHour: 2,
		Seed:           77,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := spec(500, Defects{NullRate: 0.1, DupRate: 0.05, ErrorRate: 0.05})
	a, b := Generate(s), Generate(s)
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	if !reflect.DeepEqual(a.Rows[:50], b.Rows[:50]) {
		t.Error("same spec must generate identical data")
	}
	if a.Nulls != b.Nulls || a.Duplicates != b.Duplicates || a.Errors != b.Errors {
		t.Error("defect bookkeeping not deterministic")
	}
}

func TestGenerateCardinality(t *testing.T) {
	s := spec(1000, Defects{})
	rs := Generate(s)
	if len(rs.Rows) != 1000 {
		t.Errorf("defect-free generation should give exactly Rows rows, got %d", len(rs.Rows))
	}
	if rs.Nulls != 0 || rs.Duplicates != 0 || rs.Errors != 0 {
		t.Errorf("defect-free generation injected defects: %+v", rs)
	}
	sd := spec(1000, Defects{DupRate: 0.2})
	rsd := Generate(sd)
	if len(rsd.Rows) != 1000+rsd.Duplicates {
		t.Errorf("row count %d != logical 1000 + dups %d", len(rsd.Rows), rsd.Duplicates)
	}
	if rsd.Duplicates < 120 || rsd.Duplicates > 280 {
		t.Errorf("duplicate count %d far from 20%% of 1000", rsd.Duplicates)
	}
}

func TestGenerateKeysUniqueWithoutDups(t *testing.T) {
	rs := Generate(spec(2000, Defects{}))
	seen := map[int64]bool{}
	for _, r := range rs.Rows {
		id := r[0].(int64)
		if seen[id] {
			t.Fatalf("duplicate key %d without dup injection", id)
		}
		seen[id] = true
	}
}

func TestGenerateDefectRates(t *testing.T) {
	rs := Generate(spec(5000, Defects{NullRate: 0.1, ErrorRate: 0.08}))
	// One nullable attribute -> expect ~500 nulls.
	if rs.Nulls < 380 || rs.Nulls > 640 {
		t.Errorf("nulls = %d, want ~500", rs.Nulls)
	}
	if rs.Errors < 280 || rs.Errors > 520 {
		t.Errorf("errors = %d, want ~400", rs.Errors)
	}
}

func TestGenerateTypes(t *testing.T) {
	rs := Generate(spec(100, Defects{}))
	r := rs.Rows[0]
	if _, ok := r[0].(int64); !ok {
		t.Errorf("id type %T", r[0])
	}
	if _, ok := r[2].(float64); !ok {
		t.Errorf("price type %T", r[2])
	}
	if _, ok := r[3].(string); !ok {
		t.Errorf("note type %T", r[3])
	}
	if _, ok := r[4].(int64); !ok {
		t.Errorf("when type %T", r[4])
	}
	if _, ok := r[5].(bool); !ok {
		t.Errorf("flag type %T", r[5])
	}
}

func TestIsErroneous(t *testing.T) {
	cases := []struct {
		v    etl.Value
		want bool
	}{
		{int64(5), false},
		{int64(-1_000_001), true},
		{int64(-1), true},
		{float64(10), false},
		{float64(-2e9), true},
		{"alpha", false},
		{ErrMarker + "zap", true},
		{nil, false},
		{true, false},
	}
	for _, c := range cases {
		if got := IsErroneous(c.v); got != c.want {
			t.Errorf("IsErroneous(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestMeasureAgainstInjection(t *testing.T) {
	s := spec(3000, Defects{NullRate: 0.05, DupRate: 0.1, ErrorRate: 0.05})
	rs := Generate(s)
	st := Measure(s.Schema, rs.Rows)
	if st.Rows != len(rs.Rows) {
		t.Errorf("rows = %d", st.Rows)
	}
	if st.NullCells != rs.Nulls {
		t.Errorf("measured nulls %d != injected %d", st.NullCells, rs.Nulls)
	}
	if st.Duplicates < rs.Duplicates {
		// Duplicated rows share keys, so Measure must find at least the
		// injected duplicates (random key collisions cannot occur: keys are
		// ordinals).
		t.Errorf("measured dups %d < injected %d", st.Duplicates, rs.Duplicates)
	}
	if st.Errors < rs.Errors*9/10 {
		// Some injected errors may be masked by a NULL overwrite on the
		// same attribute; allow a small gap.
		t.Errorf("measured errors %d << injected %d", st.Errors, rs.Errors)
	}
}

func TestMeasureNoKeySchema(t *testing.T) {
	schema := etl.NewSchema(etl.Attribute{Name: "v", Type: etl.TypeInt})
	rows := []etl.Row{{int64(1)}, {int64(1)}, {int64(2)}}
	st := Measure(schema, rows)
	// Without keys, duplicate detection is skipped (no key positions).
	if st.Duplicates != 0 {
		t.Errorf("dups = %d, want 0 for keyless schema", st.Duplicates)
	}
	if st.Rows != 3 {
		t.Errorf("rows = %d", st.Rows)
	}
}

// Property: generation is linear in the defect configuration — row count is
// always logical rows + duplicates, and measured nulls equal injected nulls.
func TestGenerateProperty(t *testing.T) {
	prop := func(seed uint64, nullPct, dupPct uint8) bool {
		s := spec(400, Defects{
			NullRate: float64(nullPct%50) / 100,
			DupRate:  float64(dupPct%50) / 100,
		})
		s.Seed = seed
		rs := Generate(s)
		if len(rs.Rows) != 400+rs.Duplicates {
			return false
		}
		st := Measure(s.Schema, rs.Rows)
		return st.NullCells == rs.Nulls
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerate10k(b *testing.B) {
	s := spec(10000, Defects{NullRate: 0.05, DupRate: 0.02, ErrorRate: 0.03})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Generate(s)
	}
}
