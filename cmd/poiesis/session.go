package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"poiesis"
)

// cmdSession runs the interactive redesign loop of the demo (P1): the user
// explores the alternative space, inspects skyline designs and their
// measures, drills into composite measures, and selects designs across
// iterations. Commands are read from stdin so the session is scriptable.
func cmdSession(args []string) error {
	fs := flag.NewFlagSet("session", flag.ExitOnError)
	in := fs.String("in", "", "initial flow (.xlm/.ktr/built-in)")
	scale := fs.Int("scale", 1000, "source cardinality for the simulation")
	seed := fs.Uint64("seed", 1, "random seed")
	depth := fs.Int("depth", 1, "pattern-combination depth per iteration")
	topK := fs.Int("topk", 2, "greedy policy: best points per pattern")
	configPath := fs.String("config", "", "JSON configuration document")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("session: -in required")
	}
	g, err := loadFlow(*in)
	if err != nil {
		return err
	}
	var planner *poiesis.Planner
	if *configPath != "" {
		doc, err := poiesis.LoadConfig(*configPath)
		if err != nil {
			return err
		}
		if planner, err = poiesis.PlannerFromConfig(doc); err != nil {
			return err
		}
	} else {
		planner = poiesis.NewPlanner(nil, poiesis.Options{
			Policy: poiesis.GreedyPolicy{TopK: *topK},
			Depth:  *depth,
		})
	}
	session := poiesis.NewSession(planner, g, poiesis.AutoBinding(g, *scale, *seed))
	return runSession(session, os.Stdin, os.Stdout)
}

// runSession drives the command loop; split out for testability.
func runSession(session *poiesis.Session, in io.Reader, out io.Writer) error {
	fmt.Fprintln(out, "poiesis session — commands: explore | show N | bars N | select N | history | quit")
	var last *poiesis.Result
	scanner := bufio.NewScanner(in)
	prompt := func() { fmt.Fprint(out, "> ") }
	prompt()
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			prompt()
			continue
		}
		cmd := fields[0]
		arg := -1
		if len(fields) > 1 {
			if n, err := strconv.Atoi(fields[1]); err == nil {
				arg = n
			}
		}
		switch cmd {
		case "explore":
			res, err := session.Explore()
			if err != nil {
				return err
			}
			last = res
			fmt.Fprintf(out, "%d alternatives, %d on the skyline\n",
				len(res.Alternatives), len(res.SkylineIdx))
			fmt.Fprint(out, poiesis.RenderScatterASCII(res, poiesis.ScatterOptions{
				Title: "Alternative ETL flows",
			}))
			for i, alt := range res.Skyline() {
				fmt.Fprintf(out, "  [%d] %s\n", i, alt.Label())
			}

		case "show":
			alt, ok := pickSkyline(out, last, arg)
			if !ok {
				break
			}
			fmt.Fprint(out, alt.Graph.String())
			fmt.Fprint(out, alt.Report.String())

		case "bars":
			alt, ok := pickSkyline(out, last, arg)
			if !ok {
				break
			}
			fmt.Fprint(out, poiesis.RenderRelativeBars(alt, last, map[string]bool{"*": true}))

		case "select":
			if last == nil {
				fmt.Fprintln(out, "explore first")
				break
			}
			alt, err := session.Select(arg)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			last = nil
			fmt.Fprintf(out, "selected %s; the design is now the current process (%d operations)\n",
				alt.Label(), alt.Graph.Len())

		case "history":
			for _, rec := range session.History() {
				fmt.Fprintf(out, "  #%d %s (mean skyline score %.4f -> %.4f)\n",
					rec.Iteration, rec.Label, rec.ScoreBefore, rec.ScoreAfter)
			}

		case "quit", "exit":
			fmt.Fprintln(out, "bye")
			return nil

		default:
			fmt.Fprintf(out, "unknown command %q\n", cmd)
		}
		prompt()
	}
	return scanner.Err()
}

func pickSkyline(out io.Writer, last *poiesis.Result, idx int) (*poiesis.Alternative, bool) {
	if last == nil {
		fmt.Fprintln(out, "explore first")
		return nil, false
	}
	sky := last.Skyline()
	if idx < 0 || idx >= len(sky) {
		fmt.Fprintf(out, "index out of range [0,%d)\n", len(sky))
		return nil, false
	}
	return sky[idx], true
}
