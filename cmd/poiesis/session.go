package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"poiesis"
)

// cmdSession runs the interactive redesign loop of the demo (P1): the user
// explores the alternative space, inspects skyline designs and their
// measures, drills into composite measures, and selects designs across
// iterations. Commands are read from stdin so the session is scriptable.
func cmdSession(args []string) error {
	fs := flag.NewFlagSet("session", flag.ContinueOnError)
	in := fs.String("in", "", "initial flow (.xlm/.ktr/built-in)")
	scale := fs.Int("scale", 1000, "source cardinality for the simulation")
	seed := fs.Uint64("seed", 1, "random seed")
	depth := fs.Int("depth", 1, "pattern-combination depth per iteration")
	topK := fs.Int("topk", 2, "greedy policy: best points per pattern")
	configPath := fs.String("config", "", "JSON configuration document")
	progress := fs.Bool("progress", false, "stream per-alternative progress to stderr during explore")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usagef("session: -in required")
	}
	g, err := loadFlow(*in)
	if err != nil {
		return err
	}
	var planner *poiesis.Planner
	if *configPath != "" {
		doc, err := poiesis.LoadConfig(*configPath)
		if err != nil {
			return err
		}
		if planner, err = poiesis.PlannerFromConfig(doc); err != nil {
			return err
		}
	} else {
		planner = poiesis.NewPlanner(nil, poiesis.Options{
			Policy: poiesis.GreedyPolicy{TopK: *topK},
			Depth:  *depth,
		})
	}
	// The \r-progress line must be terminated before the REPL prints the
	// exploration outcome, or stdout overprints the leftover stderr line.
	endProgressLine := func() {}
	if *progress {
		if planner.Options().Streaming == poiesis.StreamingOff {
			fmt.Fprintln(os.Stderr, "session: -progress has no effect on the sequential path (only the streaming pipeline emits events)")
		}
		planner.WithProgress(func(e poiesis.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "\rexploring: %d generated, %d evaluated, %d on the frontier\x1b[K",
				e.Generated, e.Evaluated, e.SkylineSize)
		})
		endProgressLine = func() { fmt.Fprintln(os.Stderr) }
	}
	session := poiesis.NewSession(planner, g, poiesis.AutoBinding(g, *scale, *seed))
	return runSession(session, os.Stdin, os.Stdout, endProgressLine)
}

// runSession drives the command loop; split out for testability.
// endProgressLine is invoked after every exploration to terminate a live
// progress line; nil means no-op.
func runSession(session *poiesis.Session, in io.Reader, out io.Writer, endProgressLine func()) error {
	if endProgressLine == nil {
		endProgressLine = func() {}
	}
	fmt.Fprintln(out, "poiesis session — commands: explore | show N | bars N | select N | history | quit")
	var last *poiesis.Result
	scanner := bufio.NewScanner(in)
	prompt := func() { fmt.Fprint(out, "> ") }
	prompt()
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			prompt()
			continue
		}
		cmd := fields[0]
		arg := -1
		if len(fields) > 1 {
			if n, err := strconv.Atoi(fields[1]); err == nil {
				arg = n
			}
		}
		switch cmd {
		case "explore":
			// Ctrl-C aborts the exploration but keeps the session alive: the
			// planner drains its pipeline and the current design is untouched.
			var res *poiesis.Result
			err := withInterrupt(func(ctx context.Context) error {
				var eerr error
				res, eerr = session.ExploreContext(ctx)
				return eerr
			})
			endProgressLine()
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(out, "exploration cancelled")
				prompt()
				continue
			}
			if err != nil {
				return err
			}
			last = res
			fmt.Fprintf(out, "%d alternatives, %d on the skyline\n",
				len(res.Alternatives), len(res.SkylineIdx))
			fmt.Fprint(out, poiesis.RenderScatterASCII(res, poiesis.ScatterOptions{
				Title: "Alternative ETL flows",
			}))
			for i, alt := range res.Skyline() {
				fmt.Fprintf(out, "  [%d] %s\n", i, alt.Label())
			}

		case "show":
			alt, ok := pickSkyline(out, last, arg)
			if !ok {
				break
			}
			fmt.Fprint(out, alt.Graph.String())
			fmt.Fprint(out, alt.Report.String())

		case "bars":
			alt, ok := pickSkyline(out, last, arg)
			if !ok {
				break
			}
			fmt.Fprint(out, poiesis.RenderRelativeBars(alt, last, map[string]bool{"*": true}))

		case "select":
			if last == nil {
				fmt.Fprintln(out, "explore first")
				break
			}
			alt, err := session.Select(arg)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			last = nil
			fmt.Fprintf(out, "selected %s; the design is now the current process (%d operations)\n",
				alt.Label(), alt.Graph.Len())

		case "history":
			for _, rec := range session.History() {
				fmt.Fprintf(out, "  #%d %s (mean skyline score %.4f -> %.4f)\n",
					rec.Iteration, rec.Label, rec.ScoreBefore, rec.ScoreAfter)
			}

		case "quit", "exit":
			fmt.Fprintln(out, "bye")
			return nil

		default:
			fmt.Fprintf(out, "unknown command %q\n", cmd)
		}
		prompt()
	}
	return scanner.Err()
}

func pickSkyline(out io.Writer, last *poiesis.Result, idx int) (*poiesis.Alternative, bool) {
	if last == nil {
		fmt.Fprintln(out, "explore first")
		return nil, false
	}
	sky := last.Skyline()
	if idx < 0 || idx >= len(sky) {
		fmt.Fprintf(out, "index out of range [0,%d)\n", len(sky))
		return nil, false
	}
	return sky[idx], true
}
