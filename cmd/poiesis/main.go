// Command poiesis is the command-line interface of the POIESIS ETL redesign
// tool. It loads an ETL flow from xLM or PDI (or one of the built-in demo
// flows), generates alternative designs by weaving Flow Component Patterns
// into it, estimates quality measures for every alternative, and prints the
// Pareto frontier together with the Fig. 4 scatter plot and Fig. 5
// relative-change bars.
//
// Subcommands:
//
//	patterns                      list the pattern palette (Fig. 6)
//	measures  -in FLOW            estimate measures for one flow
//	plan      -in FLOW [flags]    generate alternatives, print the skyline
//	convert   -in FLOW -out FILE  convert between xLM and .ktr
//	export    -in FLOW -out FILE  export to .dot or .json
//	session   -in FLOW [flags]    interactive explore/select loop
//	serve     [-addr HOST:PORT]   multi-session HTTP planning service
//	version                       print build version and VCS revision
//
// FLOW is a path ending in .xlm or .ktr, or one of the built-in names
// tpcds-purchases, tpcds-sales, tpcds-inventory, tpch-revenue,
// tpch-pricing.
//
// The process exits 0 on success, 1 on runtime failures and 2 on usage
// errors (bad flags or arguments), so scripts can tell misuse from genuine
// failures.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"

	"poiesis"
)

// Exit codes: scripts can distinguish misuse from genuine failures.
const (
	exitRuntime = 1 // the command ran and failed
	exitUsage   = 2 // bad arguments or flags
)

// usageError marks a command-line usage mistake, as opposed to a runtime
// failure; fatal exits 2 for the former and 1 for the latter.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

// usagef builds a usage error.
func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// fatal is the single error exit path of the CLI: every command's error
// funnels through here instead of ad-hoc Fprintln+Exit sites.
func fatal(err error) {
	if errors.Is(err, flag.ErrHelp) {
		os.Exit(0)
	}
	code := exitRuntime
	var ue usageError
	if errors.As(err, &ue) {
		code = exitUsage
	}
	fmt.Fprintln(os.Stderr, "poiesis:", err)
	os.Exit(code)
}

// parseFlags parses args, classifying flag mistakes as usage errors and
// keeping -h/--help working (the flag set prints its defaults, fatal exits
// 0 via flag.ErrHelp). Output is suppressed during Parse only so the error
// is not printed twice — once here, once by fatal — but bad flags still get
// the defaults listing.
func parseFlags(fs *flag.FlagSet, args []string) error {
	fs.SetOutput(io.Discard)
	err := fs.Parse(args)
	if err == nil {
		return nil
	}
	fs.SetOutput(os.Stderr)
	fs.Usage()
	if errors.Is(err, flag.ErrHelp) {
		return flag.ErrHelp
	}
	return usageError{err}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(exitUsage)
	}
	var err error
	switch os.Args[1] {
	case "patterns":
		err = cmdPatterns(os.Args[2:])
	case "measures":
		err = cmdMeasures(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "session":
		err = cmdSession(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "version", "-version", "--version":
		err = cmdVersion()
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		err = usagef("unknown command %q", os.Args[1])
	}
	if err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: poiesis <command> [flags]

commands:
  patterns                     list the Flow Component Pattern palette
  measures -in FLOW            estimate quality measures for a flow
  plan     -in FLOW [flags]    generate alternatives and print the skyline
  convert  -in FLOW -out FILE  convert between .xlm and .ktr
  export   -in FLOW -out FILE  export to .dot (Graphviz) or .json
  session  -in FLOW [flags]    interactive explore/select loop (stdin-driven)
  serve    [-addr HOST:PORT]   HTTP planning service (multi-session API)
  version                      print build version and VCS revision

FLOW: a .xlm or .ktr file, or one of tpcds-purchases | tpcds-sales |
tpcds-inventory | tpch-revenue | tpch-pricing

exit status: 0 on success, 1 on runtime failure, 2 on usage errors
`)
}

// withInterrupt runs fn with a context that Ctrl-C cancels, so long-running
// pipelines drain gracefully instead of the process dying mid-write. The
// handler is unregistered on the first signal, restoring default handling so
// a second Ctrl-C force-quits a slow drain.
func withInterrupt(fn func(ctx context.Context) error) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	return fn(ctx)
}

// loadFlow resolves a FLOW argument: built-in name or file path by extension.
func loadFlow(arg string) (*poiesis.Graph, error) {
	if g, ok := poiesis.BuiltinFlow(arg); ok {
		return g, nil
	}
	switch {
	case strings.HasSuffix(arg, ".xlm") || strings.HasSuffix(arg, ".xml"):
		return poiesis.LoadXLM(arg)
	case strings.HasSuffix(arg, ".ktr"):
		return poiesis.LoadPDI(arg)
	default:
		return nil, usagef("cannot infer format of %q (want .xlm, .ktr or a built-in name)", arg)
	}
}

func cmdPatterns(args []string) error {
	fs := flag.NewFlagSet("patterns", flag.ContinueOnError)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	reg := poiesis.DefaultPatterns()
	fmt.Println("Available Flow Component Patterns (Fig. 6):")
	fmt.Println()
	fmt.Printf("  %-28s %-8s %s\n", "FCP", "applies", "related quality attribute")
	fmt.Printf("  %-28s %-8s %s\n", strings.Repeat("-", 28), "-------", strings.Repeat("-", 25))
	for _, name := range reg.Names() {
		p, _ := reg.Get(name)
		fmt.Printf("  %-28s %-8s %s\n", p.Name(), p.Kind(), p.Improves())
	}
	return nil
}

func cmdMeasures(args []string) error {
	fs := flag.NewFlagSet("measures", flag.ContinueOnError)
	in := fs.String("in", "", "flow to analyse (.xlm/.ktr/built-in)")
	scale := fs.Int("scale", 5000, "source cardinality for the simulation")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usagef("measures: -in required")
	}
	g, err := loadFlow(*in)
	if err != nil {
		return err
	}
	report, bottlenecks, err := poiesis.EvaluateFlow(g, poiesis.AutoBinding(g, *scale, *seed), poiesis.SimConfig{})
	if err != nil {
		return err
	}
	fmt.Print(report.String())
	fmt.Println("\nbottleneck operations (mean over simulated runs):")
	fmt.Printf("  %-28s %-12s %10s %10s %8s %s\n", "operation", "kind", "busy ms", "rows in", "share", "failures")
	for i, op := range bottlenecks {
		if i == 8 {
			break
		}
		fmt.Printf("  %-28s %-12s %10.2f %10.0f %7.1f%% %8d\n",
			op.Node, op.Kind, op.MeanTimeMs, op.MeanRowsIn, 100*op.TimeShare, op.Failures)
	}
	return nil
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	in := fs.String("in", "", "initial flow (.xlm/.ktr/built-in)")
	depth := fs.Int("depth", 2, "pattern-combination depth")
	maxAlts := fs.Int("max", 2000, "cap on generated alternatives")
	scale := fs.Int("scale", 2000, "source cardinality for the simulation")
	seed := fs.Uint64("seed", 1, "random seed")
	topK := fs.Int("topk", 3, "greedy policy: best points per pattern")
	exhaustive := fs.Bool("exhaustive", false, "use the exhaustive policy")
	palette := fs.String("palette", "", "comma-separated pattern subset (default all)")
	configPath := fs.String("config", "", "JSON configuration document (overrides other flags)")
	svg := fs.String("svg", "", "write the Fig. 4 scatter to this SVG file")
	xlmOut := fs.String("select", "", "write the best-utility design to this .xlm file")
	bars := fs.Bool("bars", true, "print Fig. 5 relative-change bars for the best design")
	sequential := fs.Bool("sequential", false, "disable the streaming pipeline (ignored with -config)")
	fullEval := fs.Bool("full-eval", false, "disable delta evaluation: re-simulate every alternative from its sources (ignored with -config)")
	rowEngine := fs.Bool("row-engine", false, "disable the columnar simulation engine: execute flows row-at-a-time (ignored with -config)")
	progress := fs.Bool("progress", false, "stream per-alternative progress to stderr")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usagef("plan: -in required")
	}
	g, err := loadFlow(*in)
	if err != nil {
		return err
	}
	var planner *poiesis.Planner
	if *configPath != "" {
		doc, err := poiesis.LoadConfig(*configPath)
		if err != nil {
			return err
		}
		planner, err = poiesis.PlannerFromConfig(doc)
		if err != nil {
			return err
		}
	} else {
		opts := poiesis.Options{
			Depth:           *depth,
			MaxAlternatives: *maxAlts,
		}
		if *sequential {
			opts.Streaming = poiesis.StreamingOff
		}
		if *fullEval {
			opts.DeltaEval = poiesis.DeltaOff
		}
		if *rowEngine {
			opts.Columnar = poiesis.ColumnarOff
		}
		if *exhaustive {
			opts.Policy = poiesis.ExhaustivePolicy{}
		} else {
			opts.Policy = poiesis.GreedyPolicy{TopK: *topK}
		}
		if *palette != "" {
			opts.Palette = strings.Split(*palette, ",")
		}
		planner = poiesis.NewPlanner(nil, opts)
	}
	if *progress {
		if planner.Options().Streaming == poiesis.StreamingOff {
			fmt.Fprintln(os.Stderr, "plan: -progress has no effect on the sequential path (only the streaming pipeline emits events)")
		}
		planner.WithProgress(func(e poiesis.ProgressEvent) {
			// \x1b[K clears to end of line: counters can shrink (a frontier
			// eviction drops SkylineSize), leaving stale trailing characters.
			fmt.Fprintf(os.Stderr, "\rplanning: %d generated, %d evaluated, %d kept, %d on the frontier\x1b[K",
				e.Generated, e.Evaluated, e.Kept, e.SkylineSize)
		})
	}
	var res *poiesis.Result
	err = withInterrupt(func(ctx context.Context) error {
		var perr error
		res, perr = planner.PlanContext(ctx, g, poiesis.AutoBinding(g, *scale, *seed))
		return perr
	})
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}

	fmt.Printf("flow %q: %d nodes, %d edges\n", g.Name, g.Len(), g.EdgeCount())
	fmt.Printf("generated %d designs (%d duplicates removed, %d evaluated, %d constraint-rejected)\n",
		res.Stats.Generated, res.Stats.Deduped, res.Stats.Evaluated, res.Stats.ConstraintRejected)
	fmt.Printf("skyline: %d of %d alternatives\n\n", len(res.SkylineIdx), len(res.Alternatives))

	fmt.Print(poiesis.RenderScatterASCII(res, poiesis.ScatterOptions{
		Title: "Alternative ETL flows (Fig. 4)",
	}))
	fmt.Println()

	// Skyline table, best utility first under equal goals.
	goals := poiesis.NewGoals(map[poiesis.Characteristic]float64{
		poiesis.Performance: 1, poiesis.DataQuality: 1, poiesis.Reliability: 1,
	})
	type row struct {
		label   string
		utility float64
		scores  []float64
	}
	var rows []row
	for _, a := range res.Skyline() {
		rows = append(rows, row{
			label:   a.Label(),
			utility: goals.Utility(a.Report),
			scores:  a.Report.Vector(res.Dims),
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].utility > rows[j].utility })
	fmt.Printf("%-70s %10s %10s %10s\n", "skyline design", "perf", "dq", "rel")
	for _, r := range rows {
		fmt.Printf("%-70s %10.4f %10.4f %10.4f\n", clip(r.label, 70), r.scores[0], r.scores[1], r.scores[2])
	}

	fmt.Println("\nwhy each design is on the frontier:")
	for _, e := range poiesis.ExplainSkyline(res) {
		fmt.Printf("  %s\n", e)
	}

	fmt.Println("\npattern usage (skyline presence first):")
	for _, u := range poiesis.AnalyzePatternUsage(res) {
		fmt.Printf("  %-26s %4d applications, %2d in skyline designs\n",
			u.Pattern, u.Applications, u.InSkyline)
	}

	best := res.Best(goals)
	fmt.Printf("\nbest design by equal-weight goals: %s\n", best.Label())
	if *bars && best.Report != res.Initial.Report {
		fmt.Println("\nrelative change vs initial flow (Fig. 5):")
		fmt.Print(poiesis.RenderRelativeBars(best, res, map[string]bool{"*": true}))
	}
	if *svg != "" {
		doc := poiesis.RenderScatterSVG(res, poiesis.ScatterOptions{Title: "Alternative ETL flows"})
		if err := os.WriteFile(*svg, []byte(doc), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *svg)
	}
	if *xlmOut != "" {
		if err := poiesis.SaveXLM(*xlmOut, best.Graph); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *xlmOut)
	}
	return nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	in := fs.String("in", "", "input flow (.xlm/.ktr/built-in)")
	out := fs.String("out", "", "output file (.xlm or .ktr)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return usagef("convert: -in and -out required")
	}
	g, err := loadFlow(*in)
	if err != nil {
		return err
	}
	var b []byte
	switch {
	case strings.HasSuffix(*out, ".xlm") || strings.HasSuffix(*out, ".xml"):
		b, err = poiesis.EncodeXLM(g)
	case strings.HasSuffix(*out, ".ktr"):
		b, err = poiesis.EncodePDI(g)
	default:
		return usagef("convert: cannot infer format of %q", *out)
	}
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d nodes, %d edges)\n", *out, g.Len(), g.EdgeCount())
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	in := fs.String("in", "", "input flow (.xlm/.ktr/built-in)")
	out := fs.String("out", "", "output file (.dot or .json)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return usagef("export: -in and -out required")
	}
	g, err := loadFlow(*in)
	if err != nil {
		return err
	}
	var b []byte
	switch {
	case strings.HasSuffix(*out, ".dot"):
		b = []byte(poiesis.ExportDOT(g))
	case strings.HasSuffix(*out, ".json"):
		b, err = poiesis.EncodeJSON(g)
	default:
		return usagef("export: cannot infer format of %q (want .dot or .json)", *out)
	}
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(b))
	return nil
}

// cmdVersion prints the build identity the binary can know about itself:
// the module version and the VCS revision stamped by the Go toolchain
// (both "unknown" for a bare `go build` of a dirty tree). The same fields
// appear in GET /v1/healthz and the poiesis_build_info metric, so an
// operator can match a running replica to a binary on disk.
func cmdVersion() error {
	version, revision := poiesis.BuildInfo()
	fmt.Printf("poiesis %s (revision %s)\n", version, revision)
	return nil
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
