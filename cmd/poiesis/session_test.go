package main

import (
	"bytes"
	"strings"
	"testing"

	"poiesis"
)

func testSession(t *testing.T) *poiesis.Session {
	t.Helper()
	g, err := loadFlow("tpcds-purchases")
	if err != nil {
		t.Fatal(err)
	}
	cfg := poiesis.SimConfig{}
	cfg.DefaultRows = 200
	cfg.Runs = 8
	planner := poiesis.NewPlanner(nil, poiesis.Options{
		Policy: poiesis.GreedyPolicy{TopK: 1},
		Depth:  1,
		Sim:    cfg,
	})
	return poiesis.NewSession(planner, g, poiesis.AutoBinding(g, 200, 1))
}

func TestRunSessionScript(t *testing.T) {
	in := strings.NewReader("explore\nshow 0\nbars 0\nselect 0\nhistory\nquit\n")
	var out bytes.Buffer
	if err := runSession(testSession(t), in, &out, nil); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"on the skyline", "[0]", "report for", "selected", "#1", "bye",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("session output missing %q", want)
		}
	}
}

func TestRunSessionErrors(t *testing.T) {
	in := strings.NewReader("show 0\nbogus\nselect 0\nexplore\nshow 99\nselect -1\nquit\n")
	var out bytes.Buffer
	if err := runSession(testSession(t), in, &out, nil); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "explore first") {
		t.Error("show-before-explore not handled")
	}
	if !strings.Contains(s, `unknown command "bogus"`) {
		t.Error("unknown command not reported")
	}
	if !strings.Contains(s, "out of range") {
		t.Error("bad index not reported")
	}
}

func TestRunSessionEOF(t *testing.T) {
	var out bytes.Buffer
	if err := runSession(testSession(t), strings.NewReader(""), &out, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFlowBuiltins(t *testing.T) {
	for _, name := range []string{
		"tpcds-purchases", "tpcds-sales", "tpcds-inventory",
		"tpch-revenue", "tpch-pricing",
	} {
		g, err := loadFlow(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if g.Len() == 0 {
			t.Errorf("%s: empty flow", name)
		}
	}
	if _, err := loadFlow("unknown-format"); err == nil {
		t.Error("format inference should fail")
	}
}

func TestClip(t *testing.T) {
	if got := clip("short", 10); got != "short" {
		t.Errorf("clip = %q", got)
	}
	if got := clip("averylonglabelindeed", 10); len(got) != 10 || !strings.HasSuffix(got, "...") {
		t.Errorf("clip = %q", got)
	}
}
