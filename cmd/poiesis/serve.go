package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"poiesis"
)

// cmdServe runs the multi-session HTTP planning service: the explore-select
// loop of the paper's interactive tool exposed over a REST + SSE API, backed
// by a TTL-evicting session store and a fingerprint-keyed plan cache. With
// -store-dir (or the storeDir key of a -config document) sessions are
// snapshotted to disk and survive restarts. See the "Run as a service" and
// "Persistence" sections of the README for the endpoint walkthrough.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (HOST:PORT)")
	sessionTTL := fs.Duration("session-ttl", 30*time.Minute, "evict sessions idle longer than this (0 = never)")
	maxSessions := fs.Int("max-sessions", 1024, "cap on live sessions")
	cacheSize := fs.Int("cache", 128, "plan cache capacity (entries, secondary bound)")
	cacheMB := fs.Int("cache-mb", 64, "plan cache byte budget in MiB (entries weigh alternatives x dims)")
	storeDir := fs.String("store-dir", "", "persist sessions as crash-safe JSON snapshots under this directory (empty = in-memory only)")
	cfgPath := fs.String("config", "", "serve configuration document (JSON); explicit flags override it")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown budget for in-flight requests")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	// A -config document supplies defaults for every flag the command line
	// did not set explicitly; explicit flags win.
	if *cfgPath != "" {
		doc, err := poiesis.LoadServeConfig(*cfgPath)
		if err != nil {
			return err
		}
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if doc.Addr != "" && !set["addr"] {
			*addr = doc.Addr
		}
		if doc.StoreDir != "" && !set["store-dir"] {
			*storeDir = doc.StoreDir
		}
		if doc.MaxSessions > 0 && !set["max-sessions"] {
			*maxSessions = doc.MaxSessions
		}
		if doc.CacheEntries > 0 && !set["cache"] {
			*cacheSize = doc.CacheEntries
		}
		if doc.CacheMB > 0 && !set["cache-mb"] {
			*cacheMB = doc.CacheMB
		}
		// Durations were validated by ParseServe; nil means "key absent".
		if d, _ := doc.SessionTTLDuration(); d != nil && !set["session-ttl"] {
			*sessionTTL = *d
		}
		if d, _ := doc.DrainDuration(); d != nil && !set["drain"] {
			*drain = *d
		}
	}

	ttl := *sessionTTL
	if ttl == 0 {
		// The flag's 0 means "never expire"; the server config treats 0 as
		// unset (default 30m) and negative as disabled.
		ttl = -1
	}
	cfg := poiesis.ServerConfig{
		SessionTTL:    ttl,
		MaxSessions:   *maxSessions,
		CacheCapacity: *cacheSize,
		CacheMaxBytes: int64(*cacheMB) << 20,
	}
	persistence := "in-memory sessions"
	if *storeDir != "" {
		backend, err := poiesis.NewDiskSessionBackend(*storeDir)
		if err != nil {
			return err
		}
		cfg.Backend = backend
		persistence = "sessions persisted in " + *storeDir
	}
	handler := poiesis.NewServer(cfg)
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Ctrl-C / SIGINT triggers a graceful drain: the listener closes, in-
	// flight plans get the drain budget to finish (their SSE clients keep
	// receiving progress), then the process exits. A second interrupt
	// force-quits via withInterrupt's handler reset.
	return withInterrupt(func(ctx context.Context) error {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "poiesis serve: listening on http://%s (session TTL %s, cache %d entries / %d MiB, %s",
			ln.Addr(), *sessionTTL, *cacheSize, *cacheMB, persistence)
		if n := handler.RestoredSessions(); n > 0 {
			fmt.Fprintf(os.Stderr, ", %d restored", n)
		}
		fmt.Fprintln(os.Stderr, ")")

		errCh := make(chan error, 1)
		go func() { errCh <- httpSrv.Serve(ln) }()
		select {
		case err := <-errCh:
			return err
		case <-ctx.Done():
			shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
			defer cancel()
			if err := httpSrv.Shutdown(shutCtx); err != nil {
				return fmt.Errorf("serve: shutdown: %w", err)
			}
			fmt.Fprintln(os.Stderr, "poiesis serve: drained, shut down")
			return nil
		}
	})
}
