package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"time"

	"poiesis"
)

// cmdServe runs the multi-session HTTP planning service: the explore-select
// loop of the paper's interactive tool exposed over a REST + SSE API, backed
// by a TTL-evicting session store and a fingerprint-keyed plan cache. With
// -store-dir (or the storeDir key of a -config document) sessions are
// snapshotted to disk and survive restarts. With -peers and -node-id (or the
// peers/nodeID keys) the process becomes one replica of a shard-aware
// cluster: sessions route to the replica their ID hashes to and the plan
// cache gains a shared tier. See the "Run as a service", "Persistence" and
// "Cluster mode" sections of the README for the endpoint walkthrough.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (HOST:PORT)")
	sessionTTL := fs.Duration("session-ttl", 30*time.Minute, "evict sessions idle longer than this (0 = never)")
	maxSessions := fs.Int("max-sessions", 1024, "cap on live sessions")
	cacheSize := fs.Int("cache", 128, "plan cache capacity (entries, secondary bound)")
	cacheMB := fs.Int("cache-mb", 64, "plan cache byte budget in MiB (entries weigh alternatives x dims)")
	storeDir := fs.String("store-dir", "", "persist sessions as crash-safe JSON snapshots under this directory (empty = in-memory only)")
	storeSQL := fs.String("store-sql", "", "persist sessions in a SQL database; the value is the DSN (built-in engine: a file path, or :memory:)")
	storeSQLDriver := fs.String("store-sql-driver", "", "database/sql driver name for -store-sql (empty = built-in engine)")
	cfgPath := fs.String("config", "", "serve configuration document (JSON); explicit flags override it")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown budget for in-flight requests")
	nodeID := fs.String("node-id", "", "this replica's node ID within -peers (cluster mode)")
	peersSpec := fs.String("peers", "", "static cluster membership as id=url[,id=url...], including this replica; enables consistent-hash session sharding and the shared plan-cache tier")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (CPU/heap profiles over HTTP; keep off on exposed listeners)")
	accessLog := fs.Bool("access-log", true, "log one line per served request (with its request ID) to stderr")
	traceSample := fs.Int("trace-sample", 0, "trace one in N requests on /v1/traces (0 or 1 = every request, negative = tracing off; errors are always kept)")
	traceBuffer := fs.Int("trace-buffer", 0, "how many recent traces to retain for /v1/traces (0 = default 128)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	// A -config document supplies defaults for every flag the command line
	// did not set explicitly; explicit flags win.
	var docPeers map[string]string
	if *cfgPath != "" {
		doc, err := poiesis.LoadServeConfig(*cfgPath)
		if err != nil {
			return err
		}
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if doc.Addr != "" && !set["addr"] {
			*addr = doc.Addr
		}
		if doc.StoreDir != "" && !set["store-dir"] {
			*storeDir = doc.StoreDir
		}
		if doc.StoreSQL != "" && !set["store-sql"] {
			*storeSQL = doc.StoreSQL
		}
		if doc.StoreSQLDriver != "" && !set["store-sql-driver"] {
			*storeSQLDriver = doc.StoreSQLDriver
		}
		if doc.MaxSessions > 0 && !set["max-sessions"] {
			*maxSessions = doc.MaxSessions
		}
		if doc.CacheEntries > 0 && !set["cache"] {
			*cacheSize = doc.CacheEntries
		}
		if doc.CacheMB > 0 && !set["cache-mb"] {
			*cacheMB = doc.CacheMB
		}
		// Durations were validated by ParseServe; nil means "key absent".
		if d, _ := doc.SessionTTLDuration(); d != nil && !set["session-ttl"] {
			*sessionTTL = *d
		}
		if d, _ := doc.DrainDuration(); d != nil && !set["drain"] {
			*drain = *d
		}
		if doc.NodeID != "" && !set["node-id"] {
			*nodeID = doc.NodeID
		}
		if len(doc.Peers) > 0 && !set["peers"] {
			docPeers = doc.Peers
		}
	}

	// Cluster membership: the -peers flag wins over the document's peers
	// map; either way the node ID must name one of the members.
	var members []poiesis.ClusterMember
	if *peersSpec != "" {
		var err error
		if members, err = poiesis.ParseClusterPeers(*peersSpec); err != nil {
			return err
		}
	} else if len(docPeers) > 0 {
		ids := make([]string, 0, len(docPeers))
		for id := range docPeers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			members = append(members, poiesis.ClusterMember{ID: id, URL: docPeers[id]})
		}
	}
	if *nodeID != "" && len(members) == 0 {
		return fmt.Errorf("serve: -node-id %q given without -peers (or a peers key in -config)", *nodeID)
	}

	ttl := *sessionTTL
	if ttl == 0 {
		// The flag's 0 means "never expire"; the server config treats 0 as
		// unset (default 30m) and negative as disabled.
		ttl = -1
	}
	cfg := poiesis.ServerConfig{
		SessionTTL:    ttl,
		MaxSessions:   *maxSessions,
		CacheCapacity: *cacheSize,
		CacheMaxBytes: int64(*cacheMB) << 20,
		TraceSample:   *traceSample,
		TraceBuffer:   *traceBuffer,
	}
	persistence := "in-memory sessions"
	switch {
	case *storeDir != "" && *storeSQL != "":
		return fmt.Errorf("serve: -store-dir and -store-sql are mutually exclusive")
	case *storeDir != "":
		backend, err := poiesis.NewDiskSessionBackend(*storeDir)
		if err != nil {
			return err
		}
		cfg.Backend = backend
		persistence = "sessions persisted in " + *storeDir
	case *storeSQL != "":
		backend, err := poiesis.NewSQLSessionBackend(*storeSQLDriver, *storeSQL)
		if err != nil {
			return err
		}
		cfg.Backend = backend
		persistence = "sessions persisted via SQL in " + *storeSQL
	case *storeSQLDriver != "":
		return fmt.Errorf("serve: -store-sql-driver given without -store-sql")
	}
	clusterMode := "single node"
	if len(members) > 0 {
		cl, err := poiesis.NewCluster(*nodeID, members)
		if err != nil {
			return err
		}
		cfg.Cluster = cl
		clusterMode = fmt.Sprintf("cluster node %s of %d", *nodeID, len(members))
	}
	if *accessLog {
		cfg.AccessLogf = log.New(os.Stderr, "", log.LstdFlags).Printf
	}
	handler := poiesis.NewServer(cfg)
	var root http.Handler = handler
	if *pprofOn {
		// The profiler gets its own mux in front of the service so the
		// service's routing (and its /metrics instrumentation) stays exactly
		// as in production; /debug/pprof/ requests never reach the planner.
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		root = outer
	}
	httpSrv := &http.Server{
		Handler:           root,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Ctrl-C / SIGINT triggers a graceful drain: the listener closes, in-
	// flight plans get the drain budget to finish (their SSE clients keep
	// receiving progress), then the process exits. A second interrupt
	// force-quits via withInterrupt's handler reset.
	return withInterrupt(func(ctx context.Context) error {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "poiesis serve: listening on http://%s (session TTL %s, cache %d entries / %d MiB, %s, %s",
			ln.Addr(), *sessionTTL, *cacheSize, *cacheMB, persistence, clusterMode)
		if n := handler.RestoredSessions(); n > 0 {
			fmt.Fprintf(os.Stderr, ", %d restored", n)
		}
		fmt.Fprintln(os.Stderr, ")")

		errCh := make(chan error, 1)
		go func() { errCh <- httpSrv.Serve(ln) }()
		select {
		case err := <-errCh:
			return err
		case <-ctx.Done():
			shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
			defer cancel()
			if err := httpSrv.Shutdown(shutCtx); err != nil {
				return fmt.Errorf("serve: shutdown: %w", err)
			}
			// With no more requests in flight, drain the store's background
			// eviction worker and release the backend (the SQL backend holds
			// an open database pool).
			if err := handler.Close(); err != nil {
				return fmt.Errorf("serve: closing session store: %w", err)
			}
			if closer, ok := cfg.Backend.(interface{ Close() error }); ok {
				if err := closer.Close(); err != nil {
					return fmt.Errorf("serve: closing session backend: %w", err)
				}
			}
			fmt.Fprintln(os.Stderr, "poiesis serve: drained, shut down")
			return nil
		}
	})
}
