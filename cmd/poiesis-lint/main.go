// Command poiesis-lint runs the repo's invariant analyzers (package
// internal/lint) over Go packages and, exit-code-wise, behaves like a
// compiler: 0 when clean, 1 when diagnostics were reported, 2 when analysis
// itself failed.
//
// Usage:
//
//	poiesis-lint [flags] [packages]
//
// Packages are go-list patterns (default ./...). Fixture directories under
// testdata are accepted as explicit arguments even though ./... skips them —
// CI uses that to self-test the linter against seeded violations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"poiesis/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	catalog := flag.Bool("catalog", false, "print the analyzer catalog and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: poiesis-lint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *catalog {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			var unknown []string
			for n := range want {
				unknown = append(unknown, n)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "poiesis-lint: unknown analyzer(s): %s\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		analyzers = sel
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "poiesis-lint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(wd, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "poiesis-lint: %v\n", err)
		os.Exit(2)
	}
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "poiesis-lint: %s: type error: %v\n", p.ImportPath, te)
		}
	}

	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			fmt.Println("[]")
		} else if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "poiesis-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
