// Command benchjson converts `go test -bench` output on stdin into a JSON
// array of benchmark records on stdout, so CI can persist benchstat-
// comparable numbers (name, ns/op, B/op, allocs/op plus custom metrics) as
// an artifact — BENCH_<n>.json — and the performance trajectory of the
// planner stays visible across PRs.
//
// Usage:
//
//	go test -run xxx -bench 'Fig3|Fig4|A5' -benchmem -count=1 . | go run ./cmd/benchjson > BENCH.json
//	go run ./cmd/benchjson -diff-schema committed.json regenerated.json
//	go run ./cmd/benchjson -check-metrics metrics.txt
//	go run ./cmd/benchjson -check-trace trace.json
//
// The -diff-schema mode compares the *shape* of two record files — the set
// of record names and each record's metric keys — and exits non-zero on
// drift. Numbers are deliberately ignored: CI regenerates load reports on
// shared runners whose latencies vary, but a silently added, renamed, or
// dropped series would corrupt the trajectory, and that is what the check
// catches.
//
// The -check-metrics mode parses a saved /metrics scrape with the service's
// own strict exposition parser and requires the core poiesis_* families to
// be present, so CI catches a scrape that serves but has gone syntactically
// or structurally bad.
//
// The -check-trace mode validates a saved GET /v1/traces/{id} document: one
// consistent trace ID, a single root span, resolvable parent links, and at
// least three child layers under the root — the tree a healthy instrumented
// plan request always produces (http → planner → alternative → sim).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"poiesis/internal/obs"
)

// Record is one benchmark result line.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  float64            `json:"b_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-diff-schema" {
		if len(os.Args) != 4 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff-schema OLD.json NEW.json")
			os.Exit(2)
		}
		drift, err := diffSchema(os.Args[2], os.Args[3])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if len(drift) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: schema drift between %s and %s:\n", os.Args[2], os.Args[3])
			for _, d := range drift {
				fmt.Fprintln(os.Stderr, "  "+d)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchjson: schemas match")
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "-check-metrics" {
		if len(os.Args) != 3 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -check-metrics METRICS.txt")
			os.Exit(2)
		}
		if err := checkMetrics(os.Args[2]); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchjson: metrics exposition OK")
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "-check-trace" {
		if len(os.Args) != 3 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -check-trace TRACE.json")
			os.Exit(2)
		}
		if err := checkTrace(os.Args[2]); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := []Record{}
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		rec, ok := parseLine(line)
		if ok {
			out = append(out, rec)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// No parseable result lines means the bench run produced nothing — fail
	// loudly (after emitting a valid empty array) so CI cannot publish a
	// hollow trajectory artifact with a green check.
	if len(out) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
}

// parseLine decodes one result line of the standard bench output format:
//
//	BenchmarkName/sub-8   	     100	  12345 ns/op	  678 B/op	  9 allocs/op	  4096 alternatives
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			rec.NsPerOp = v
		case "B/op":
			rec.BytesPerOp = v
		case "allocs/op":
			rec.AllocsPerOp = v
		default:
			rec.Metrics[unit] = v
		}
	}
	if len(rec.Metrics) == 0 {
		rec.Metrics = nil
	}
	return rec, rec.NsPerOp > 0
}

// checkMetrics validates a saved /metrics scrape: it must parse under the
// strict exposition grammar and contain the core metric families a healthy
// service always exports after serving one plan.
func checkMetrics(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := obs.ParseText(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	seen := map[string]bool{}
	for _, s := range samples {
		seen[s.Name] = true
	}
	var missing []string
	for _, want := range []string{
		"poiesis_http_requests_total",
		"poiesis_http_request_duration_seconds_count",
		"poiesis_planner_stage_duration_seconds_count",
		"poiesis_plans_computed_total",
		"poiesis_plan_cache_misses_total",
		"poiesis_backend_op_duration_seconds_count",
		"poiesis_sessions",
		"poiesis_build_info",
	} {
		if !seen[want] {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s: %d samples parsed but required families missing: %s",
			path, len(samples), strings.Join(missing, ", "))
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d samples across %d metric names\n", len(samples), len(seen))
	return nil
}

// checkTrace validates a saved /v1/traces/{id} span-tree document. The
// shape requirements mirror what one instrumented plan request must always
// produce: every span carries the document's trace ID, parent links resolve
// within the trace, exactly one span is the root, and the tree is at least
// four layers deep (root plus three child layers).
func checkTrace(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		ID    string `json:"id"`
		Root  string `json:"root"`
		Spans []struct {
			TraceID  string `json:"traceId"`
			SpanID   string `json:"spanId"`
			ParentID string `json:"parentId"`
			Name     string `json:"name"`
			Service  string `json:"service"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if doc.ID == "" || len(doc.Spans) == 0 {
		return fmt.Errorf("%s: not a trace document (id %q, %d spans)", path, doc.ID, len(doc.Spans))
	}
	parent := map[string]string{}
	services := map[string]bool{}
	roots := 0
	for _, sp := range doc.Spans {
		if sp.TraceID != doc.ID {
			return fmt.Errorf("%s: span %s (%s) carries trace %s, want %s", path, sp.SpanID, sp.Name, sp.TraceID, doc.ID)
		}
		parent[sp.SpanID] = sp.ParentID
		services[sp.Service] = true
	}
	for _, sp := range doc.Spans {
		if sp.ParentID == "" {
			roots++
		} else if _, ok := parent[sp.ParentID]; !ok {
			return fmt.Errorf("%s: span %s (%s) has unresolved parent %s", path, sp.SpanID, sp.Name, sp.ParentID)
		}
	}
	if roots != 1 {
		return fmt.Errorf("%s: %d root spans, want exactly 1", path, roots)
	}
	// Depth is the longest parent chain; the chain length is bounded by the
	// span count, so a corrupt parent cycle also fails here.
	depth := 0
	for _, sp := range doc.Spans {
		d, id := 1, sp.SpanID
		for parent[id] != "" && d <= len(doc.Spans) {
			id = parent[id]
			d++
		}
		if d > len(doc.Spans) {
			return fmt.Errorf("%s: parent cycle through span %s", path, sp.SpanID)
		}
		if d > depth {
			depth = d
		}
	}
	const wantDepth = 4 // root + three child layers
	if depth < wantDepth {
		return fmt.Errorf("%s: span tree depth %d, want >= %d (root %q, %d spans)", path, depth, wantDepth, doc.Root, len(doc.Spans))
	}
	fmt.Fprintf(os.Stderr, "benchjson: trace %s OK: root %q, %d spans, depth %d, %d service(s)\n",
		doc.ID, doc.Root, len(doc.Spans), depth, len(services))
	return nil
}

// gomaxprocsSuffix is the "-8" CPU-count tail go test appends to benchmark
// names; it varies with the runner, not the schema, so it is normalized away
// before comparing.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// schemaOf reduces a record file to its shape: record name (normalized) →
// sorted metric keys.
func schemaOf(path string) (map[string][]string, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(blob, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	schema := map[string][]string{}
	for _, rec := range recs {
		name := gomaxprocsSuffix.ReplaceAllString(rec.Name, "")
		keys := make([]string, 0, len(rec.Metrics))
		for k := range rec.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		schema[name] = keys
	}
	return schema, nil
}

// diffSchema lists every record series or metric key present in one file but
// not the other.
func diffSchema(oldPath, newPath string) ([]string, error) {
	oldSchema, err := schemaOf(oldPath)
	if err != nil {
		return nil, err
	}
	newSchema, err := schemaOf(newPath)
	if err != nil {
		return nil, err
	}
	var drift []string
	names := map[string]bool{}
	for n := range oldSchema {
		names[n] = true
	}
	for n := range newSchema {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		oldKeys, inOld := oldSchema[n]
		newKeys, inNew := newSchema[n]
		switch {
		case !inNew:
			drift = append(drift, fmt.Sprintf("record %q dropped", n))
		case !inOld:
			drift = append(drift, fmt.Sprintf("record %q added", n))
		case strings.Join(oldKeys, ",") != strings.Join(newKeys, ","):
			drift = append(drift, fmt.Sprintf("record %q metrics changed: [%s] -> [%s]",
				n, strings.Join(oldKeys, " "), strings.Join(newKeys, " ")))
		}
	}
	return drift, nil
}
