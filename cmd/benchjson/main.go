// Command benchjson converts `go test -bench` output on stdin into a JSON
// array of benchmark records on stdout, so CI can persist benchstat-
// comparable numbers (name, ns/op, B/op, allocs/op plus custom metrics) as
// an artifact — BENCH_<n>.json — and the performance trajectory of the
// planner stays visible across PRs.
//
// Usage:
//
//	go test -run xxx -bench 'Fig3|Fig4|A5' -benchmem -count=1 . | go run ./cmd/benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result line.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  float64            `json:"b_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := []Record{}
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		rec, ok := parseLine(line)
		if ok {
			out = append(out, rec)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// No parseable result lines means the bench run produced nothing — fail
	// loudly (after emitting a valid empty array) so CI cannot publish a
	// hollow trajectory artifact with a green check.
	if len(out) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
}

// parseLine decodes one result line of the standard bench output format:
//
//	BenchmarkName/sub-8   	     100	  12345 ns/op	  678 B/op	  9 allocs/op	  4096 alternatives
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			rec.NsPerOp = v
		case "B/op":
			rec.BytesPerOp = v
		case "allocs/op":
			rec.AllocsPerOp = v
		default:
			rec.Metrics[unit] = v
		}
	}
	if len(rec.Metrics) == 0 {
		rec.Metrics = nil
	}
	return rec, rec.NsPerOp > 0
}
