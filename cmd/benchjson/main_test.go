package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRecords(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffSchemaIgnoresNumbers(t *testing.T) {
	oldPath := writeRecords(t, "old.json", `[
		{"name": "LoadHTTP/memory/get", "iterations": 100, "ns_op": 350000, "metrics": {"p50-ns": 1, "p95-ns": 2, "p99-ns": 3}},
		{"name": "BenchmarkFig3/scale-8", "iterations": 10, "ns_op": 5}
	]`)
	newPath := writeRecords(t, "new.json", `[
		{"name": "LoadHTTP/memory/get", "iterations": 999, "ns_op": 910000, "metrics": {"p50-ns": 9, "p95-ns": 8, "p99-ns": 7}},
		{"name": "BenchmarkFig3/scale-16", "iterations": 50, "ns_op": 6}
	]`)
	drift, err := diffSchema(oldPath, newPath)
	if err != nil {
		t.Fatal(err)
	}
	// Different numbers and a different GOMAXPROCS suffix are not drift.
	if len(drift) != 0 {
		t.Errorf("unexpected drift: %v", drift)
	}
}

func TestDiffSchemaCatchesShapeChanges(t *testing.T) {
	oldPath := writeRecords(t, "old.json", `[
		{"name": "a", "iterations": 1, "ns_op": 1, "metrics": {"p50-ns": 1}},
		{"name": "dropped", "iterations": 1, "ns_op": 1}
	]`)
	newPath := writeRecords(t, "new.json", `[
		{"name": "a", "iterations": 1, "ns_op": 1, "metrics": {"p50-ns": 1, "surprise": 2}},
		{"name": "added", "iterations": 1, "ns_op": 1}
	]`)
	drift, err := diffSchema(oldPath, newPath)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(drift, "\n")
	for _, want := range []string{`"dropped" dropped`, `"added" added`, `"a" metrics changed`} {
		if !strings.Contains(joined, want) {
			t.Errorf("drift misses %q:\n%s", want, joined)
		}
	}
	if len(drift) != 3 {
		t.Errorf("got %d drift entries, want 3:\n%s", len(drift), joined)
	}
}

func TestDiffSchemaErrors(t *testing.T) {
	good := writeRecords(t, "good.json", `[]`)
	if _, err := diffSchema(good, filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeRecords(t, "bad.json", `{not json`)
	if _, err := diffSchema(good, bad); err == nil {
		t.Error("malformed file accepted")
	}
}
