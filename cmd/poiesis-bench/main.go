// Command poiesis-bench is the open-loop load harness for the poiesis
// planning service. It drives a configurable create/plan/select/get/SSE/
// delete mix at a target Poisson arrival rate and reports per-operation
// p50/p95/p99 latencies and error budgets, as a human-readable table on
// stderr and optionally as a JSON array in cmd/benchjson's BENCH_<n>.json
// record format.
//
// Two modes:
//
//	poiesis-bench -url http://host:8080        # against a running `poiesis serve`
//	poiesis-bench -backends memory,disk,sql    # in-process: one run per backend
//
// In-process mode mounts the real service on a real loopback listener per
// backend (fresh temp storage each), so the three session-persistence tiers
// are compared under identical traffic.
//
// Usage:
//
//	poiesis-bench [-qps 50] [-duration 5s] [-mix get=5,plan=3,...] [-seed 1]
//	              [-url URL | -backends LIST] [-out BENCH.json] [-error-budget 0.01]
//	              [-row-engine]
//
// Record labels carry the engine mode ("LoadHTTP/<target>/columnar" or
// ".../row") so BENCH trajectories distinguish simulation-engine ablations.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"poiesis"
	"poiesis/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "poiesis-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("poiesis-bench", flag.ContinueOnError)
	url := fs.String("url", "", "target a running service at this base URL (mutually exclusive with -backends)")
	backendsSpec := fs.String("backends", "memory,disk,sql", "in-process mode: comma-separated session backends to compare")
	qps := fs.Float64("qps", 50, "target arrival rate (open-loop Poisson)")
	duration := fs.Duration("duration", 5*time.Second, "arrival window per run")
	mixSpec := fs.String("mix", "", "traffic mix as op=weight[,op=weight...] over create,plan,select,get,sse,delete (empty = default mix)")
	seed := fs.Int64("seed", 1, "arrival-schedule seed (same seed = same schedule)")
	rowEngine := fs.Bool("row-engine", false, "plan with the row-at-a-time simulation engine instead of the columnar default")
	out := fs.String("out", "", "write benchjson-format records to this file ('-' = stdout)")
	budget := fs.Float64("error-budget", 0.01, "fail when any run's error rate exceeds this fraction")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}

	type target struct {
		name  string
		url   string
		close func()
	}
	var targets []target
	if *url != "" {
		targets = []target{{name: "remote", url: *url}}
	} else {
		for _, name := range strings.Split(*backendsSpec, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			t, err := startBackend(name)
			if err != nil {
				return err
			}
			targets = append(targets, target{name: name, url: t.url, close: t.close})
		}
		if len(targets) == 0 {
			return fmt.Errorf("no backends selected")
		}
	}

	engine := "columnar"
	if *rowEngine {
		engine = "row"
	}
	var records []loadgen.Record
	exceeded := false
	for _, tgt := range targets {
		fmt.Fprintf(os.Stderr, "== %s ==\n", tgt.name)
		report, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL:   tgt.url,
			QPS:       *qps,
			Duration:  *duration,
			Mix:       mix,
			Seed:      *seed,
			RowEngine: *rowEngine,
		})
		if tgt.close != nil {
			tgt.close()
		}
		if err != nil {
			return fmt.Errorf("run against %s: %w", tgt.name, err)
		}
		report.WriteText(os.Stderr)
		records = append(records, report.Records("LoadHTTP/"+tgt.name+"/"+engine)...)
		if rate := report.ErrorRate(); rate > *budget {
			fmt.Fprintf(os.Stderr, "error budget exceeded on %s: %.4f > %.4f\n", tgt.name, rate, *budget)
			exceeded = true
		}
	}

	if *out != "" {
		blob, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if *out == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
	}
	if exceeded {
		return fmt.Errorf("error budget exceeded")
	}
	return nil
}

// parseMix decodes "op=weight,op=weight" into a loadgen.Mix.
func parseMix(spec string) (loadgen.Mix, error) {
	if spec == "" {
		return nil, nil
	}
	valid := map[loadgen.Op]bool{
		loadgen.OpCreate: true, loadgen.OpPlan: true, loadgen.OpSelect: true,
		loadgen.OpGet: true, loadgen.OpSSE: true, loadgen.OpDelete: true,
	}
	mix := loadgen.Mix{}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad -mix entry %q (want op=weight)", part)
		}
		op := loadgen.Op(kv[0])
		if !valid[op] {
			return nil, fmt.Errorf("bad -mix op %q", kv[0])
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -mix weight %q", kv[1])
		}
		mix[op] = w
	}
	return mix, nil
}

type inProcess struct {
	url   string
	close func()
}

// startBackend mounts a fresh service over the named session backend on a
// loopback listener, with temp storage cleaned up on close.
func startBackend(name string) (*inProcess, error) {
	cfg := poiesis.ServerConfig{Logf: func(string, ...any) {}}
	cleanup := func() {}
	switch name {
	case "memory":
	case "disk":
		dir, err := os.MkdirTemp("", "poiesis-bench-disk-")
		if err != nil {
			return nil, err
		}
		backend, err := poiesis.NewDiskSessionBackend(dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		cfg.Backend = backend
		cleanup = func() { os.RemoveAll(dir) }
	case "sql":
		dir, err := os.MkdirTemp("", "poiesis-bench-sql-")
		if err != nil {
			return nil, err
		}
		backend, err := poiesis.NewSQLSessionBackend("", filepath.Join(dir, "sessions.db"))
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		cfg.Backend = backend
		cleanup = func() {
			backend.Close()
			os.RemoveAll(dir)
		}
	default:
		return nil, fmt.Errorf("unknown backend %q (want memory, disk, or sql)", name)
	}
	handler := poiesis.NewServer(cfg)
	srv := httptest.NewServer(handler)
	return &inProcess{
		url: srv.URL,
		close: func() {
			srv.Close()
			handler.Close()
			cleanup()
		},
	}, nil
}
