package poiesis_test

// Smoke tests for examples/: every example program must vet clean, compile,
// and run to completion. The examples are self-contained (they write only to
// the OS temp dir or their own temp dirs), so each built binary is executed
// in a scratch working directory and must exit 0 with some stdout.

import (
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// exampleDirs lists the example program directories.
func exampleDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		t.Fatal("no example directories found")
	}
	return dirs
}

func TestExamplesVet(t *testing.T) {
	out, err := exec.Command("go", "vet", "./examples/...").CombinedOutput()
	if err != nil {
		t.Fatalf("go vet ./examples/...: %v\n%s", err, out)
	}
}

func TestExamplesBuildAndRun(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	binDir := t.TempDir()
	for _, name := range exampleDirs(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(binDir, name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			build.Dir = root
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			if testing.Short() {
				t.Skip("-short: compiled only, not executed")
			}
			run := exec.Command(bin)
			run.Dir = t.TempDir()
			done := make(chan struct{})
			var out []byte
			var runErr error
			go func() {
				out, runErr = run.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Minute):
				_ = run.Process.Kill()
				<-done
				t.Fatalf("example did not finish within 2m\n%s", out)
			}
			if runErr != nil {
				t.Fatalf("run: %v\n%s", runErr, out)
			}
			if len(out) == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
